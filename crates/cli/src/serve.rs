//! `fastbfs serve`: an instrumented BFS query server over a pool of
//! parked warm sessions, with batch-coalescing admission and
//! per-request deadlines.
//!
//! Architecture — three kinds of threads over plain `std::net` (no async
//! runtime, one request per connection, `Connection: close`):
//!
//! * **HTTP workers** (`--http-threads`) share the listener. They parse
//!   and *validate* requests (`QueryKind::validate`), so a malformed or
//!   out-of-range request costs an HTTP 400/422 before it ever touches
//!   the admission queue; they stamp each query with its deadline (the
//!   client's `Deadline-Ms` header, falling back to the server-wide
//!   `--deadline-ms` budget), enqueue, and block awaiting the reply.
//!   Each worker owns one serialization buffer that rides along inside
//!   the job and comes back with the reply, so steady-state response
//!   writing reuses the same allocation across requests.
//! * **The admission queue** is one mutex-guarded `VecDeque` bounded by
//!   `--queue-cap`; a full (or stopping) queue sheds load with an
//!   immediate 503. Queue depth and in-flight counts live under the
//!   same lock and are sampled together at scrape time, so the two
//!   gauges can never over-count a request mid-handoff.
//! * **Session dispatchers** (`--sessions`, default `min(4, cores/8)`)
//!   each own one warm [`BfsSession`] and are each the single writer of
//!   their own registry — queries on a session stay serialized
//!   (`&mut self`), preserving the warm-reset protocol and the
//!   synchronization-free metrics slots. A dispatcher that frees up
//!   pops a *wave*: a head single-source reach query coalesces with the
//!   consecutive reach queries queued behind it (up to [`MAX_WAVE`])
//!   into one `run_batch`-equivalent dispatch via
//!   [`query::execute_wave`], and the per-request results fan back to
//!   the individual waiters. Requests whose deadline passed while they
//!   waited are answered 504 at pop time without ever executing.
//!
//! Every admitted request carries a lifecycle span: request id plus
//! parse, queue-wait, and execute segments, the session that ran it and
//! the size of the wave it rode in. Spans are echoed in the response
//! JSON and accumulate into the per-session registries; `/metrics`
//! merges those registries into one fleet-wide exposition
//! ([`MetricsSnapshot::merge`]) plus per-session busy/served series.
//!
//! Endpoints:
//!
//! * `GET /query?src=N[&dst=M]` — BFS from `src`; with `dst`, also that
//!   vertex's depth/parent in the resulting tree;
//! * `GET /path?src=A&dst=B`   — BFS plus tree-path reconstruction;
//! * `POST /query` (`{"sources":[...]}`) — batched multi-source BFS;
//! * `GET /graph`    — vertex/edge counts (load generators size their
//!   source range from this);
//! * `GET /metrics`  — Prometheus 0.0.4 exposition: merged registry
//!   counters and histograms, `fastbfs_sessions`, per-session
//!   busy/served series, live `fastbfs_queue_depth`/`fastbfs_in_flight`
//!   gauges, `fastbfs_uptime_seconds`, and `fastbfs_build_info`;
//! * `GET /healthz`  — liveness probe, plain `ok`;
//! * `GET /snapshot` — merged registry snapshot as JSON with structured
//!   hardware-counter availability and per-session request counts;
//! * `GET /debug/slow` — the flight recorder's retained slow traces,
//!   ranked slowest-first (`?n=` caps the list; a malformed `n` is a
//!   400, not silently ignored);
//! * `GET /debug/trace/<id>` — one trace by id: the full span+level
//!   document if the tail sampler kept it, the id+latency digest
//!   otherwise;
//! * `GET /debug/health` — windowed SLO verdict (DESIGN.md §16):
//!   `ok`/`degraded`/`breaching` per configured SLO (`--slo-p99-ms`,
//!   `--slo-error-rate`, `--slo-drop-rate`) over the fast and slow
//!   burn-rate windows, windowed rate/latency summaries for both
//!   windows, `queue_wedged` readiness, and the slowest retained trace
//!   ids as exemplars. Answers **503** while any SLO is breaching so
//!   external probes can act on it (`/healthz` stays pure liveness);
//! * `GET /debug/timeseries` — the retained rollup ring as JSON frames,
//!   oldest first (`?n=` caps the list);
//! * `GET /quitquitquit` — graceful shutdown (drains admitted jobs).
//!
//! A dedicated **rollup ticker** thread diffs the merged published
//! snapshots every `--rollup-interval-ms` into a preallocated ring of
//! per-interval delta frames ([`bfs_metrics::rollup`]) — counter deltas
//! plus histogram-bucket deltas, so `/debug/health` reports *windowed*
//! rates and true windowed p50/p99, not since-boot aggregates. The tick
//! itself is allocation-free; ticks continue while the server is idle,
//! so windowed rates decay to zero (and verdicts recover) during quiet
//! periods without traffic. 503 sheds carry a `Retry-After` header
//! derived from the fast window's drain rate.
//!
//! Every request additionally carries a **flight-recorder trace id**
//! (the client's `Trace-Id` header, or a generated `req-<id>`), echoed
//! in the response JSON. Completed requests land in a fixed-capacity
//! ring: failures and tail-latency outliers keep their full trace —
//! spans joined with the executing session's per-level digest
//! (direction, frontier, phase nanoseconds) — everything else keeps an
//! id+latency digest (DESIGN.md §15). Diagnostic reads (`/metrics`,
//! `/snapshot`, `/debug/*`) are answered on the listener thread and
//! never pass through the admission queue, so they stay responsive
//! exactly when the queue is saturated.
//!
//! Error taxonomy (DESIGN.md §14): 400 malformed, 422 valid syntax but
//! impossible vertices, 405 wrong method; **503** means *shed before
//! queueing* (queue full, or shutting down) — retry elsewhere/later;
//! **504** means *admitted but not executed in time* (deadline expired
//! while queued, or the dispatch timeout fired) — the work was never
//! (deadline) or only partially (timeout) worth doing. Unknown paths
//! stay plain-text 404.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use bfs_core::engine::{BfsOptions, BfsOutput};
use bfs_core::query::{self, QueryKind, QueryOutcome};
use bfs_core::session::BfsSession;
use bfs_graph::stats::random_roots;
use bfs_metrics::rollup::{self, RollupRing, SloConfig, SloState, WindowStats};
use bfs_metrics::{prom, Counter, Hist, MetricsSnapshot};
use bfs_platform::Topology;
use bfs_trace::{
    FlightRecorder, FlightStats, LevelDigest, RequestTrace, TailSampler, TraceDigest, TraceLookup,
};
use serde::Serialize;

use crate::cmd;
use crate::http::{self, Request, RequestError};
use crate::opts::Opts;

/// How long an HTTP worker waits for a dispatcher before giving up with
/// a 504. Generous: a cold huge-graph query plus a deep queue can
/// legitimately take seconds.
const DISPATCH_TIMEOUT: Duration = Duration::from_secs(60);
/// Minimum interval between a busy dispatcher's snapshot publishes;
/// bounds the per-wave metrics overhead under load. An idle queue always
/// publishes before replying (see [`serve_wave`]).
const PUBLISH_INTERVAL: Duration = Duration::from_millis(50);
/// Most queued single-source reach queries one wave coalesces. Bounds
/// how long the wave's first waiter can be delayed behind its peers and
/// how stale the published metrics can get mid-wave.
const MAX_WAVE: usize = 16;

/// The admission queue and its occupancy accounting. One lock holds all
/// three so scrapes read a consistent picture: a request is *either*
/// queued *or* in flight, never both, and the transition happens under
/// this lock.
struct Admission {
    queue: VecDeque<Job>,
    /// Jobs popped by a dispatcher and not yet answered.
    in_flight: u64,
    /// Mirrors `ServerState::stop` so dispatchers blocked on the condvar
    /// observe shutdown without racing the atomic.
    stop: bool,
}

/// Per-session state shared with the scrape path. The dispatcher owns
/// the registry; scrapes read the last *published* snapshot.
struct SessionShared {
    /// Last published registry snapshot (merged fleet-wide at scrape).
    snapshot: Mutex<MetricsSnapshot>,
    /// Traversals run, as of the last publish.
    traversals: AtomicU64,
    /// 1 while warming up or executing a wave, 0 while parked.
    busy: AtomicU64,
    /// Requests this session answered (executed or deadline-dropped).
    served: AtomicU64,
}

/// State shared between the HTTP workers and the session dispatchers.
struct ServerState {
    stop: AtomicBool,
    admission: Mutex<Admission>,
    /// Signals dispatchers that the queue gained a job (or stop was set).
    available: Condvar,
    queue_cap: usize,
    /// Server-wide deadline budget; `Deadline-Ms` overrides per request.
    default_deadline_ms: Option<u64>,
    /// Requests answered 4xx/5xx by the workers; dispatchers drain this
    /// into `Counter::ServeErrors` (single-writer rule).
    http_errors: AtomicU64,
    /// Failure traces recorded worker-side (4xx, shed, dispatch timeout);
    /// dispatchers drain this into `Counter::ServeTraceSampled` the same
    /// way `http_errors` feeds `ServeErrors`.
    trace_sampled_errors: AtomicU64,
    /// Completed-request flight recorder (DESIGN.md §15). `Mutex`-guarded
    /// internally: workers and dispatchers both record into it — it is a
    /// diagnostic ring, not a metrics registry, so the single-writer rule
    /// does not apply.
    recorder: FlightRecorder,
    /// Tail-sampling policy: full trace vs id+latency digest.
    sampler: Mutex<TailSampler>,
    /// `--slow-ms` as configured (echoed by `/debug/slow`).
    slow_ms: Option<u64>,
    /// `--trace-log` JSONL sink for sampled traces.
    trace_log: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
    next_id: AtomicU64,
    started: Instant,
    sessions: Vec<SessionShared>,
    /// Static `/graph` body.
    graph_json: String,
    /// Legacy combined hw string (`"available"` / `"unavailable: ..."`).
    hw: String,
    hw_kind: Option<String>,
    hw_reason: Option<String>,
    local: std::net::SocketAddr,
    version: &'static str,
    git_rev: Option<String>,
    rustc: Option<String>,
    /// Windowed delta frames over the merged published snapshots, fed by
    /// the rollup ticker thread (DESIGN.md §16).
    rollup: Mutex<RollupRing>,
    /// SLO thresholds evaluated over the burn-rate windows.
    slo: SloConfig,
    /// Tick cadence of the rollup ring.
    rollup_interval: Duration,
    /// Fast (acute) burn-rate window, in ticks.
    fast_ticks: usize,
    /// Slow (budget) burn-rate window, in ticks.
    slow_ticks: usize,
    /// Consecutive ticks the admission queue has been at capacity;
    /// `queue_wedged` once it covers a full fast window.
    wedged_ticks: AtomicU64,
}

/// One admitted query, owned by a dispatcher from dequeue on.
struct Job {
    id: u64,
    /// Flight-recorder trace id: the client's `Trace-Id` header or the
    /// generated `req-<id>`.
    trace_id: String,
    /// Human-readable descriptor for the recorded trace.
    query_desc: String,
    kind: QueryKind,
    arrival: Instant,
    parse_ns: u64,
    enqueued: Instant,
    /// Answer-by instant; `None` means no budget. Checked when a
    /// dispatcher pops the job: expired jobs get a 504 and never run.
    deadline: Option<Instant>,
    /// The worker's serialization buffer; the response body is rendered
    /// into it and it travels back via the reply.
    buf: Vec<u8>,
    resp: mpsc::Sender<Reply>,
}

/// A dispatcher's answer to one request.
struct Reply {
    status: &'static str,
    body: Vec<u8>,
}

/// Lifecycle span echoed in each response (nanoseconds, plus wave
/// placement). The serialize segment is measured around rendering this
/// very document, so it lands only in the registry counters, not here.
struct Span {
    parse_ns: u64,
    queue_ns: u64,
    /// 0 for deadline-dropped requests: no execute phase ever ran.
    execute_ns: u64,
    /// Which session answered.
    session: usize,
    /// Executed queries in the wave this request rode in; 0 for
    /// deadline-dropped requests (they were never part of one).
    wave: usize,
}

/// `/snapshot` document. Owns its fields: the vendored serde derive has
/// no lifetime-parameter support, and the doc is rebuilt per scrape.
#[derive(Serialize)]
struct SnapshotDoc {
    /// Traversals across all sessions (warmup + served queries).
    queries: u64,
    uptime_s: f64,
    queue_depth: u64,
    in_flight: u64,
    /// Size of the session pool.
    sessions: u64,
    /// Per-session requests answered, indexed by session id.
    session_requests: Vec<u64>,
    /// Legacy combined string (`"available"` / `"unavailable: ..."`),
    /// kept for pre-PR6 consumers.
    hw: String,
    /// Structured availability: whether per-phase hardware counters are
    /// actually being sampled.
    hw_available: bool,
    /// Machine-readable degradation tag (`"permission_denied"`, ...);
    /// `None` when counters are available.
    hw_kind: Option<String>,
    /// Human-readable degradation reason; `None` when available.
    hw_reason: Option<String>,
    metrics: MetricsSnapshot,
}

/// `/debug/slow` document: the recorder's slowest retained traces plus
/// the sampling policy that kept them.
#[derive(Serialize)]
struct SlowDoc {
    /// Current rolling keep-threshold (`None` while the sampler warms
    /// up): successful requests strictly above it keep full traces.
    threshold_ns: Option<u64>,
    /// The configured absolute floor, as given (`--slow-ms`).
    slow_ms: Option<u64>,
    /// Ring occupancy and eviction churn.
    stats: FlightStats,
    /// Retained full traces ranked slowest-first.
    slow: Vec<RequestTrace>,
}

/// `/debug/health` document: the burn-rate SLO verdict plus windowed
/// summaries and flight-recorder exemplars (DESIGN.md §16).
#[derive(Serialize)]
struct HealthDoc {
    /// Worst per-SLO state: `ok`, `degraded`, or `breaching` (the HTTP
    /// status is 503 iff this is `breaching`).
    state: String,
    /// True when the admission queue has sat at capacity for a full
    /// fast window of consecutive rollup ticks.
    queue_wedged: bool,
    uptime_s: f64,
    /// Rollup ticks so far (the first tick is the diffing baseline).
    ticks: u64,
    interval_ms: u64,
    fast_window_s: f64,
    slow_window_s: f64,
    /// Per-SLO verdicts, in `--slo-p99-ms`/`--slo-error-rate`/
    /// `--slo-drop-rate` order; empty when no SLO is configured.
    slos: Vec<SloDoc>,
    fast: WindowDoc,
    slow: WindowDoc,
    queue_depth: u64,
    in_flight: u64,
    /// Slowest retained full traces (id + total ns), the exemplars to
    /// pull through `/debug/trace/<id>` when a verdict is bad.
    exemplars: Vec<ExemplarDoc>,
}

/// One SLO's evaluation in `/debug/health`.
#[derive(Serialize)]
struct SloDoc {
    name: String,
    threshold: f64,
    /// Windowed value over the fast window.
    fast: f64,
    /// Windowed value over the slow window.
    slow: f64,
    state: String,
}

/// Windowed rate/latency summary for one burn-rate window.
#[derive(Serialize)]
struct WindowDoc {
    /// Delta frames summed (fewer than configured until the ring fills).
    frames: u64,
    elapsed_s: f64,
    requests: u64,
    errors: u64,
    dropped: u64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    error_rate: f64,
    drop_rate: f64,
    coalesce_rate: f64,
    top_down_steps: u64,
    bottom_up_steps: u64,
}

/// One exemplar trace reference in `/debug/health`.
#[derive(Serialize)]
struct ExemplarDoc {
    trace_id: String,
    total_ns: u64,
}

/// `/debug/timeseries` document: the retained rollup frames.
#[derive(Serialize)]
struct TimeseriesDoc {
    interval_ms: u64,
    /// Ring capacity in frames (= the slow window).
    capacity: u64,
    /// Rollup ticks so far.
    ticks: u64,
    /// Retained frames, oldest first.
    frames: Vec<FrameDoc>,
}

/// One per-interval delta frame in `/debug/timeseries`.
#[derive(Serialize)]
struct FrameDoc {
    seq: u64,
    uptime_s: f64,
    interval_s: f64,
    requests: u64,
    errors: u64,
    dropped: u64,
    coalesced: u64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    queries: u64,
    top_down_steps: u64,
    bottom_up_steps: u64,
    queue_depth: u64,
    in_flight: u64,
}

/// Poison-tolerant lock: a panicked holder must not wedge the server.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// `fastbfs serve`
pub fn serve(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["no-rearrange", "relabel", "hugepages"])?;
    let loaded = match o.get("i") {
        Some(path) => cmd::load_graph(path)?,
        None if o.get("family").is_some() => cmd::generate_family(&o)?,
        None => return Err("serve needs -i FILE or --family ...".into()),
    };
    let sockets: usize = o.num("sockets", 1)?;
    let threads: usize = o.num("threads", bfs_platform::pin::host_cores())?;
    // Session pool: each session gets its own parked SPMD pool carved
    // out of the thread budget. The default keeps the pool small enough
    // that sessions don't fight for lanes.
    let default_sessions = (bfs_platform::pin::host_cores() / 8).clamp(1, 4);
    let num_sessions: usize = o.num("sessions", default_sessions)?.max(1);
    let per_session = (threads / num_sessions).max(1);
    let topo = Topology::synthetic(sockets, per_session.div_ceil(sockets).max(1));
    let default_deadline_ms: Option<u64> = match o.get("deadline-ms") {
        Some(_) => Some(o.num("deadline-ms", 0u64)?),
        None => None,
    };
    // Warmup traversals before serving (round-robin over random roots,
    // striped across the session pool): primes every session's
    // high-water buffers so the first real request sees warm-path
    // latency.
    let warmup: u64 = o.num("queries", 0u64)?;
    let count: usize = o.num("sources", 16)?;
    let seed: u64 = o.num("seed", 42)?;
    // Warmup roots in external ids, drawn before any relabeling — the
    // endpoints (and therefore the warmup) speak the file's id space.
    let warmup_roots = random_roots(&loaded, count, seed);
    if warmup > 0 && warmup_roots.is_empty() {
        return Err("graph has no edges".into());
    }
    let mut warmup_slices: Vec<Vec<u32>> = vec![Vec::new(); num_sessions];
    for q in 0..warmup {
        let root = warmup_roots[(q % warmup_roots.len() as u64) as usize];
        warmup_slices[(q as usize) % num_sessions].push(root);
    }
    let g = cmd::prepare_graph(loaded, &o, false).0;
    let addr = o.get("metrics-addr").unwrap_or("127.0.0.1:9464");
    let http_threads: usize = o.num("http-threads", 4)?.max(1);
    let queue_cap: usize = o.num("queue-cap", 1024)?.max(1);
    // Flight recorder: `--slow-ms` is the absolute keep floor (0 keeps
    // every trace — useful for smokes), `--trace-ring` sizes the full-
    // trace ring (the digest ring is 16x, at least 1024), `--trace-log`
    // appends every sampled trace as JSONL.
    let slow_ms: Option<u64> = match o.get("slow-ms") {
        Some(_) => Some(o.num("slow-ms", 0u64)?),
        None => None,
    };
    let trace_ring: usize = o.num("trace-ring", 64)?.max(1);
    let trace_log = match o.get("trace-log") {
        Some(path) => Some(Mutex::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?,
        ))),
        None => None,
    };
    // Rollup ring + SLO engine: the ticker diffs the merged snapshots
    // every interval; verdicts compare windowed values against the
    // thresholds over a fast (acute, default 1 min) and a slow (budget,
    // default 5 min) window. Short intervals/windows are allowed — the
    // check.sh smoke runs 100ms ticks with seconds-long windows.
    let rollup_interval_ms: u64 = o.num("rollup-interval-ms", 1000u64)?.max(10);
    let fast_window_s = o.num::<f64>("slo-fast-s", 60.0)?.max(0.001);
    let slow_window_s = o.num::<f64>("slo-slow-s", 300.0)?.max(fast_window_s);
    let interval_s = rollup_interval_ms as f64 / 1000.0;
    let fast_ticks = ((fast_window_s / interval_s).ceil() as usize).max(1);
    let slow_ticks = ((slow_window_s / interval_s).ceil() as usize).max(fast_ticks);
    let slo = SloConfig {
        p99_ms: match o.get("slo-p99-ms") {
            Some(_) => Some(o.num("slo-p99-ms", 0.0f64)?),
            None => None,
        },
        error_rate: match o.get("slo-error-rate") {
            Some(_) => Some(o.num("slo-error-rate", 0.0f64)?),
            None => None,
        },
        drop_rate: match o.get("slo-drop-rate") {
            Some(_) => Some(o.num("slo-drop-rate", 0.0f64)?),
            None => None,
        },
    };

    let opts = BfsOptions {
        hw_counters: true,
        ..cmd::engine_options(&o)?
    };
    let mut sessions: Vec<BfsSession> = (0..num_sessions)
        .map(|_| BfsSession::new(&g, topo, opts))
        .collect();
    if let Some(reason) = sessions[0].engine().hugepage_status().unavailable_reason() {
        println!("hugepages: traversal arenas on plain pages ({reason})");
    }
    let hw_status = sessions[0]
        .engine()
        .hw_status()
        .unavailable_reason()
        .cloned();
    let hw = match &hw_status {
        Some(r) => format!("unavailable: {r}"),
        None => "available".to_string(),
    };

    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    println!(
        "serving http://{local}/query (also /path /graph /metrics /healthz /snapshot \
         /debug/slow /debug/trace/<id> /debug/health /debug/timeseries /quitquitquit)"
    );
    println!(
        "rollup: {rollup_interval_ms}ms ticks, fast window {fast_window_s}s ({fast_ticks} ticks), \
         slow window {slow_window_s}s ({slow_ticks} ticks), slo p99 {} error-rate {} drop-rate {}",
        match slo.p99_ms {
            Some(v) => format!("{v}ms"),
            None => "off".into(),
        },
        match slo.error_rate {
            Some(v) => format!("{v}"),
            None => "off".into(),
        },
        match slo.drop_rate {
            Some(v) => format!("{v}"),
            None => "off".into(),
        },
    );
    println!(
        "flight recorder: {trace_ring} full traces (+{} digests), slow floor {}, trace log {}",
        trace_ring.saturating_mul(16).max(1024),
        match slow_ms {
            Some(ms) => format!("{ms}ms"),
            None => "rolling p99 only".into(),
        },
        o.get("trace-log").unwrap_or("off"),
    );
    println!(
        "pool: {num_sessions} sessions x ({} sockets x {} lanes), queue cap {queue_cap}, {http_threads} http threads, deadline {}, hw counters {hw}",
        topo.sockets,
        topo.lanes_per_socket,
        match default_deadline_ms {
            Some(ms) => format!("{ms}ms"),
            None => "none".into(),
        },
    );
    // Port 0 binds an ephemeral port; the written address is the one that
    // actually resolved.
    if let Some(path) = o.get("addr-file") {
        std::fs::write(path, local.to_string()).map_err(|e| format!("write {path}: {e}"))?;
    }

    // Publish each session's (all-zero) registry before accepting: the
    // first scrape merges real snapshots, never an empty body.
    let shared: Vec<SessionShared> = sessions
        .iter_mut()
        .map(|s| SessionShared {
            snapshot: Mutex::new(s.metrics_snapshot()),
            traversals: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            served: AtomicU64::new(0),
        })
        .collect();
    let state = ServerState {
        stop: AtomicBool::new(false),
        admission: Mutex::new(Admission {
            queue: VecDeque::new(),
            in_flight: 0,
            stop: false,
        }),
        available: Condvar::new(),
        queue_cap,
        default_deadline_ms,
        http_errors: AtomicU64::new(0),
        trace_sampled_errors: AtomicU64::new(0),
        recorder: FlightRecorder::new(trace_ring, trace_ring.saturating_mul(16).max(1024)),
        sampler: Mutex::new(TailSampler::new(slow_ms)),
        slow_ms,
        trace_log,
        next_id: AtomicU64::new(0),
        started: Instant::now(),
        sessions: shared,
        graph_json: format!(
            "{{\"vertices\":{},\"edges\":{}}}",
            g.num_vertices(),
            g.num_edges()
        ),
        hw,
        hw_kind: hw_status.as_ref().map(|r| r.kind().to_string()),
        hw_reason: hw_status.as_ref().map(|r| r.to_string()),
        local,
        version: env!("CARGO_PKG_VERSION"),
        git_rev: bfs_bench::report::git_revision(),
        rustc: bfs_bench::report::rustc_version(),
        // The ring retains exactly the slow window (frame count is
        // clamped inside RollupRing::new; /debug/timeseries serves what
        // is retained).
        rollup: Mutex::new(RollupRing::new(slow_ticks)),
        slo,
        rollup_interval: Duration::from_millis(rollup_interval_ms),
        fast_ticks,
        slow_ticks,
        wedged_ticks: AtomicU64::new(0),
    };

    let num_vertices = g.num_vertices();
    std::thread::scope(|scope| -> Result<(), String> {
        let state = &state;
        let listener = &listener;
        for _ in 0..http_threads {
            scope.spawn(move || http_worker(listener, state, num_vertices));
        }
        // The rollup ticker keeps appending frames while the server is
        // idle: quiet intervals carry zero deltas, which is what lets
        // windowed rates (and SLO verdicts) decay back to ok.
        scope.spawn(move || rollup_ticker(state));

        // Sessions 1.. dispatch on spawned threads; session 0 on this one.
        let mut session0 = sessions.remove(0);
        let handles: Vec<_> = sessions
            .into_iter()
            .enumerate()
            .map(|(j, mut s)| {
                let idx = j + 1;
                let slice = std::mem::take(&mut warmup_slices[idx]);
                scope.spawn(move || run_session(idx, &mut s, state, &slice))
            })
            .collect();
        let slice0 = std::mem::take(&mut warmup_slices[0]);
        let (mut served, mut traversals) = run_session(0, &mut session0, state, &slice0);
        for h in handles {
            let (s, t) = h.join().map_err(|_| "session dispatcher panicked")?;
            served += s;
            traversals += t;
        }
        wake_workers(state, http_threads);
        println!(
            "shutdown after {served} served requests across {num_sessions} sessions, {traversals} traversals"
        );
        Ok(())
    })
}

/// Unblocks workers parked in `accept` after `stop` is set.
fn wake_workers(state: &ServerState, n: usize) {
    for _ in 0..n {
        let _ = TcpStream::connect(state.local);
    }
}

/// One session dispatcher: warms its slice of the warmup roots, then
/// pops coalesced waves off the admission queue until shutdown. Returns
/// `(requests answered, traversals run)`.
fn run_session(
    idx: usize,
    session: &mut BfsSession<'_>,
    state: &ServerState,
    warmup_roots: &[u32],
) -> (u64, u64) {
    let shared = &state.sessions[idx];
    let mut out = BfsOutput::default();
    if !warmup_roots.is_empty() {
        shared.busy.store(1, Ordering::Relaxed);
        for (q, &root) in warmup_roots.iter().enumerate() {
            session.run_reusing(root, &mut out);
            if q % 16 == 15 {
                publish(idx, session, state);
            }
        }
        shared.busy.store(0, Ordering::Relaxed);
        if idx == 0 {
            println!("warmup done; serving");
        }
    }
    publish(idx, session, state);

    let mut served = 0u64;
    let mut last_publish = Instant::now();
    let mut wave: Vec<Job> = Vec::new();
    loop {
        {
            let mut adm = lock(&state.admission);
            loop {
                if let Some(head) = adm.queue.pop_front() {
                    // Coalesce: a reach head absorbs the consecutive
                    // reach queries queued behind it. Path/batch jobs
                    // dispatch alone (their latency profile differs).
                    let coalesce = matches!(head.kind, QueryKind::Reach { .. });
                    wave.push(head);
                    while coalesce
                        && wave.len() < MAX_WAVE
                        && matches!(
                            adm.queue.front().map(|j| &j.kind),
                            Some(QueryKind::Reach { .. })
                        )
                    {
                        let next = adm.queue.pop_front().expect("front was Some");
                        wave.push(next);
                    }
                    adm.in_flight += wave.len() as u64;
                    break;
                }
                if adm.stop {
                    drop(adm);
                    publish(idx, session, state);
                    return (served, session.runs());
                }
                adm = state
                    .available
                    .wait_timeout(adm, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
        shared.busy.store(1, Ordering::Relaxed);
        served += serve_wave(idx, session, &mut wave, &mut out, state, &mut last_publish);
        shared.busy.store(0, Ordering::Relaxed);
    }
}

/// Serves one popped wave: triages deadlines, executes the survivors as
/// one batch-equivalent dispatch, records every lifecycle span, and
/// fans the replies back. Returns the number of requests answered.
fn serve_wave(
    idx: usize,
    session: &mut BfsSession<'_>,
    wave: &mut Vec<Job>,
    out: &mut BfsOutput,
    state: &ServerState,
    last_publish: &mut Instant,
) -> u64 {
    // Deadline triage at pop time: a request whose budget lapsed while
    // it waited is answered 504 and never reaches the engine.
    let popped = Instant::now();
    let mut dropped: Vec<(Job, u64)> = Vec::new();
    let mut live: Vec<(Job, u64)> = Vec::new();
    for job in wave.drain(..) {
        let queue_ns = elapsed_ns(job.enqueued);
        match job.deadline {
            Some(d) if d <= popped => dropped.push((job, queue_ns)),
            _ => live.push((job, queue_ns)),
        }
    }
    let wave_size = live.len();
    for (job, queue_ns) in dropped.iter_mut() {
        let span = Span {
            parse_ns: job.parse_ns,
            queue_ns: *queue_ns,
            execute_ns: 0,
            session: idx,
            wave: 0,
        };
        job.buf.clear();
        let _ = write!(
            job.buf,
            "{{\"error\":\"deadline expired while queued; request dropped without executing\",\"id\":{},\"trace_id\":\"{}\",",
            job.id, job.trace_id
        );
        write_span(&mut job.buf, &span);
        job.buf.push(b'}');
    }

    // Execute the survivors as one wave; each result renders into its
    // waiter's buffer as the traversal completes, and the sampler rules
    // on the trace *inside* the callback — the executing session's level
    // digest must be copied out before the next wave member overwrites
    // it.
    let kinds: Vec<QueryKind> = live.iter().map(|(j, _)| j.kind.clone()).collect();
    let mut timings: Vec<LiveTiming> = (0..live.len()).map(|_| LiveTiming::default()).collect();
    let mut seg = Instant::now();
    query::execute_wave(session, &kinds, out, |sess, i, outcome| {
        let execute_ns = elapsed_ns(seg);
        let (job, queue_ns) = &mut live[i];
        let ser = Instant::now();
        let span = Span {
            parse_ns: job.parse_ns,
            queue_ns: *queue_ns,
            execute_ns,
            session: idx,
            wave: wave_size,
        };
        render_outcome(&mut job.buf, job.id, &job.trace_id, &outcome, &span);
        let serialize_ns = elapsed_ns(ser);
        let total_ns = elapsed_ns(job.arrival);
        let keep = lock(&state.sampler).decide(total_ns, false);
        let (levels, levels_truncated) = if keep {
            sess.with_level_digest(|log| (log.entries().to_vec(), log.truncated()))
        } else {
            (Vec::new(), 0)
        };
        timings[i] = LiveTiming {
            execute_ns,
            serialize_ns,
            total_ns,
            keep,
            levels,
            levels_truncated,
        };
        seg = Instant::now();
    });

    // Single-writer metrics: only this dispatcher touches this session's
    // registry, and worker-side error/trace tallies arrive via the
    // drained atomics.
    let errors = state.http_errors.swap(0, Ordering::Relaxed);
    let worker_traces = state.trace_sampled_errors.swap(0, Ordering::Relaxed);
    {
        let kept = timings.iter().filter(|t| t.keep).count() as u64;
        let mut d = session.metrics_mut().driver();
        d.add(Counter::ServeErrors, errors);
        d.add(
            Counter::ServeTraceSampled,
            worker_traces + dropped.len() as u64 + kept,
        );
        d.add(Counter::ServeTraceDigest, timings.len() as u64 - kept);
        for (job, queue_ns) in &dropped {
            d.add(Counter::ServeRequests, 1);
            d.add(Counter::ServeDeadlineDropped, 1);
            d.add(Counter::ServeParseNs, job.parse_ns);
            d.add(Counter::ServeQueueNs, *queue_ns);
            d.observe(Hist::ServeQueueNs, *queue_ns);
        }
        for ((job, queue_ns), t) in live.iter().zip(timings.iter()) {
            d.add(Counter::ServeRequests, 1);
            d.add(Counter::ServeParseNs, job.parse_ns);
            d.add(Counter::ServeQueueNs, *queue_ns);
            d.add(Counter::ServeExecNs, t.execute_ns);
            d.add(Counter::ServeSerializeNs, t.serialize_ns);
            d.observe(Hist::ServeQueueNs, *queue_ns);
            d.observe(Hist::ServeRequestNs, t.total_ns);
        }
        if wave_size >= 2 {
            d.add(Counter::ServeCoalescedWaves, 1);
            d.add(Counter::ServeCoalescedRequests, wave_size as u64);
        }
    }

    let answered = (dropped.len() + live.len()) as u64;
    let idle = {
        let mut adm = lock(&state.admission);
        adm.in_flight -= answered;
        adm.queue.is_empty()
    };
    // Publish *before* replying when the queue is idle (or the rate
    // limit allows): a client that has its response is guaranteed the
    // next scrape already includes its request. Under sustained load the
    // interval bounds the overhead and staleness is capped by MAX_WAVE.
    if idle || last_publish.elapsed() >= PUBLISH_INTERVAL {
        publish(idx, session, state);
        *last_publish = Instant::now();
    }
    let shared = &state.sessions[idx];
    for (mut job, queue_ns) in dropped {
        // A deadline drop is a failure: its full trace is always kept.
        record_full_trace(
            state,
            RequestTrace {
                id: std::mem::take(&mut job.trace_id),
                query: std::mem::take(&mut job.query_desc),
                status: 504,
                outcome: "deadline_dropped".to_string(),
                error: Some("deadline expired while queued".to_string()),
                sampled: true,
                parse_ns: job.parse_ns,
                queue_ns,
                execute_ns: 0,
                serialize_ns: 0,
                total_ns: elapsed_ns(job.arrival),
                session: Some(idx as u64),
                wave: 0,
                levels: Vec::new(),
                levels_truncated: 0,
            },
        );
        shared.served.fetch_add(1, Ordering::Relaxed);
        let _ = job.resp.send(Reply {
            status: "504 Gateway Timeout",
            body: job.buf,
        });
    }
    for ((mut job, queue_ns), t) in live.into_iter().zip(timings) {
        let trace_id = std::mem::take(&mut job.trace_id);
        if t.keep {
            record_full_trace(
                state,
                RequestTrace {
                    id: trace_id,
                    query: std::mem::take(&mut job.query_desc),
                    status: 200,
                    outcome: "ok".to_string(),
                    error: None,
                    sampled: true,
                    parse_ns: job.parse_ns,
                    queue_ns,
                    execute_ns: t.execute_ns,
                    serialize_ns: t.serialize_ns,
                    total_ns: t.total_ns,
                    session: Some(idx as u64),
                    wave: wave_size as u64,
                    levels: t.levels,
                    levels_truncated: t.levels_truncated,
                },
            );
        } else {
            state.recorder.record_digest(TraceDigest {
                id: trace_id,
                status: 200,
                total_ns: t.total_ns,
                sampled: false,
            });
        }
        shared.served.fetch_add(1, Ordering::Relaxed);
        let _ = job.resp.send(Reply {
            status: "200 OK",
            body: job.buf,
        });
    }
    answered
}

/// Per-live-request measurements and the sampler's verdict, captured
/// inside the wave callback (the level digest is only valid until the
/// next wave member runs).
#[derive(Default)]
struct LiveTiming {
    execute_ns: u64,
    serialize_ns: u64,
    total_ns: u64,
    keep: bool,
    levels: Vec<LevelDigest>,
    levels_truncated: u64,
}

/// Stores a sampled trace in the full ring and, when `--trace-log` is
/// set, appends it as one JSON line.
fn record_full_trace(state: &ServerState, trace: RequestTrace) {
    if let Some(log) = &state.trace_log {
        if let Ok(line) = serde_json::to_string(&trace) {
            let mut w = lock(log);
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
    state.recorder.record_full(trace);
}

/// Records a worker-side failure (4xx, shed, dispatch timeout) as an
/// always-kept trace. Workers may not touch a session registry, so the
/// sampled count rides the drained `trace_sampled_errors` atomic.
#[allow(clippy::too_many_arguments)]
fn record_failure_trace(
    state: &ServerState,
    trace_id: String,
    query: String,
    status: u16,
    outcome: &str,
    error: &str,
    arrival: Instant,
    parse_ns: u64,
) {
    state.trace_sampled_errors.fetch_add(1, Ordering::Relaxed);
    record_full_trace(
        state,
        RequestTrace {
            id: trace_id,
            query,
            status,
            outcome: outcome.to_string(),
            error: Some(error.to_string()),
            sampled: true,
            parse_ns,
            queue_ns: 0,
            execute_ns: 0,
            serialize_ns: 0,
            total_ns: elapsed_ns(arrival),
            session: None,
            wave: 0,
            levels: Vec::new(),
            levels_truncated: 0,
        },
    );
}

/// Accepts client-supplied trace ids that are short and shell/JSON-safe:
/// 1–64 characters from `[A-Za-z0-9_.-]`.
fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Publishes the session's registry snapshot for the scrape path.
fn publish(idx: usize, session: &mut BfsSession<'_>, state: &ServerState) {
    let shared = &state.sessions[idx];
    let snap = session.metrics_snapshot();
    shared.traversals.store(session.runs(), Ordering::Relaxed);
    *lock(&shared.snapshot) = snap;
}

// ---- response rendering -------------------------------------------------
//
// Responses are rendered by hand into the job's reusable buffer: every
// field is numeric or a fixed literal, so this stays byte-deterministic
// and the steady-state serve loop performs no per-response allocation
// once buffers reach their high-water capacity (the vendored
// serde_json builds an intermediate String per call, which is fine for
// scrape documents but not for the hot path).

fn write_span(buf: &mut Vec<u8>, s: &Span) {
    let _ = write!(
        buf,
        "\"spans\":{{\"parse_ns\":{},\"queue_ns\":{},\"execute_ns\":{},\"session\":{},\"wave\":{}}}",
        s.parse_ns, s.queue_ns, s.execute_ns, s.session, s.wave
    );
}

fn write_u32_opt(buf: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(x) => {
            let _ = write!(buf, "{x}");
        }
        None => buf.extend_from_slice(b"null"),
    }
}

fn write_reach_fields(buf: &mut Vec<u8>, r: &query::ReachResult) {
    let _ = write!(
        buf,
        "\"src\":{},\"depth\":{},\"visited_vertices\":{},\"traversed_edges\":{},\"dst\":",
        r.src, r.depth, r.visited_vertices, r.traversed_edges
    );
    match &r.dst {
        Some(v) => {
            let _ = write!(buf, "{{\"vertex\":{},\"depth\":", v.vertex);
            write_u32_opt(buf, v.depth);
            buf.extend_from_slice(b",\"parent\":");
            write_u32_opt(buf, v.parent);
            buf.push(b'}');
        }
        None => buf.extend_from_slice(b"null"),
    }
}

/// Renders one outcome (plus id, trace id, and spans) into `buf`,
/// replacing its contents but reusing its capacity. Trace ids are
/// validated to `[A-Za-z0-9_.-]`, so emitting one needs no escaping.
fn render_outcome(buf: &mut Vec<u8>, id: u64, trace_id: &str, outcome: &QueryOutcome, span: &Span) {
    buf.clear();
    match outcome {
        QueryOutcome::Reach(r) => {
            let _ = write!(buf, "{{\"id\":{id},\"trace_id\":\"{trace_id}\",");
            write_reach_fields(buf, r);
            buf.push(b',');
            write_span(buf, span);
            buf.push(b'}');
        }
        QueryOutcome::Path(p) => {
            let _ = write!(
                buf,
                "{{\"id\":{id},\"trace_id\":\"{trace_id}\",\"src\":{},\"dst\":{},\"reached\":{},\"path\":[",
                p.src,
                p.dst,
                p.reached()
            );
            for (i, v) in p.path.iter().enumerate() {
                if i > 0 {
                    buf.push(b',');
                }
                let _ = write!(buf, "{v}");
            }
            buf.extend_from_slice(b"],");
            write_span(buf, span);
            buf.push(b'}');
        }
        QueryOutcome::Batch(rows) => {
            let _ = write!(
                buf,
                "{{\"id\":{id},\"trace_id\":\"{trace_id}\",\"results\":["
            );
            for (i, r) in rows.iter().enumerate() {
                if i > 0 {
                    buf.push(b',');
                }
                buf.push(b'{');
                write_reach_fields(buf, r);
                buf.push(b'}');
            }
            buf.extend_from_slice(b"],");
            write_span(buf, span);
            buf.push(b'}');
        }
    }
}

// ---- scrape path --------------------------------------------------------

/// Merges every session's last published snapshot into one fleet view.
fn merged_snapshot(state: &ServerState) -> MetricsSnapshot {
    let mut merged: Option<MetricsSnapshot> = None;
    for s in &state.sessions {
        let snap = lock(&s.snapshot);
        match merged.as_mut() {
            None => merged = Some(snap.clone()),
            Some(m) => m.merge(&snap),
        }
    }
    merged.expect("pool has at least one session")
}

/// Queue depth and in-flight count sampled together under the admission
/// lock, so `depth + in_flight` never over-counts a request that is
/// mid-handoff between the queue and a session.
fn admission_levels(state: &ServerState) -> (u64, u64) {
    let adm = lock(&state.admission);
    (adm.queue.len() as u64, adm.in_flight)
}

// ---- rollup ticker ------------------------------------------------------

/// The rollup ticker: every `--rollup-interval-ms` it merges the
/// published per-session snapshots, diffs them into the next ring frame
/// (allocation-free inside [`RollupRing::tick`]), and tracks how long
/// the admission queue has been wedged at capacity. Runs until stop;
/// sleeps in short slices so shutdown is never delayed by a long
/// interval.
fn rollup_ticker(state: &ServerState) {
    let interval = state.rollup_interval;
    let mut next = Instant::now() + interval;
    loop {
        loop {
            if state.stop.load(Ordering::Relaxed) {
                return;
            }
            let now = Instant::now();
            if now >= next {
                break;
            }
            std::thread::sleep((next - now).min(Duration::from_millis(25)));
        }
        let snap = merged_snapshot(state);
        let (depth, in_flight) = admission_levels(state);
        if depth >= state.queue_cap as u64 {
            state.wedged_ticks.fetch_add(1, Ordering::Relaxed);
        } else {
            state.wedged_ticks.store(0, Ordering::Relaxed);
        }
        let uptime_s = state.started.elapsed().as_secs_f64();
        lock(&state.rollup).tick(&snap, uptime_s, depth, in_flight);
        next += interval;
        // If the tick itself (or a scheduler stall) overran the cadence,
        // resynchronize instead of firing a catch-up burst.
        let now = Instant::now();
        if next < now {
            next = now + interval;
        }
    }
}

/// True when the queue has been at capacity for every tick of a full
/// fast window.
fn queue_wedged(state: &ServerState) -> bool {
    state.wedged_ticks.load(Ordering::Relaxed) >= state.fast_ticks as u64
}

fn window_doc(w: &WindowStats) -> WindowDoc {
    let (top_down, bottom_up) = w.direction_mix();
    WindowDoc {
        frames: w.frames as u64,
        elapsed_s: w.elapsed_s,
        requests: w.counter(Counter::ServeRequests),
        errors: w.counter(Counter::ServeErrors),
        dropped: w.counter(Counter::ServeDeadlineDropped),
        qps: w.qps(),
        p50_ms: w.latency_ms(0.5),
        p99_ms: w.latency_ms(0.99),
        error_rate: w.error_rate(),
        drop_rate: w.drop_rate(),
        coalesce_rate: w.coalesce_rate(),
        top_down_steps: top_down,
        bottom_up_steps: bottom_up,
    }
}

/// The `/debug/health` body and its HTTP status: 503 while any SLO is
/// breaching, 200 otherwise (including `degraded` — probes that only
/// act on hard failure keep routing traffic while the budget recovers).
fn health_body(state: &ServerState) -> Result<(&'static str, String), String> {
    let (fast, slow, ticks) = {
        let ring = lock(&state.rollup);
        (
            ring.window(state.fast_ticks),
            ring.window(state.slow_ticks),
            ring.ticks(),
        )
    };
    let verdict = rollup::evaluate(&state.slo, &fast, &slow);
    let (depth, in_flight) = admission_levels(state);
    let doc = HealthDoc {
        state: verdict.state.name().to_string(),
        queue_wedged: queue_wedged(state),
        uptime_s: state.started.elapsed().as_secs_f64(),
        ticks,
        interval_ms: state.rollup_interval.as_millis() as u64,
        fast_window_s: state.fast_ticks as f64 * state.rollup_interval.as_secs_f64(),
        slow_window_s: state.slow_ticks as f64 * state.rollup_interval.as_secs_f64(),
        slos: verdict
            .slos
            .iter()
            .map(|s| SloDoc {
                name: s.name.to_string(),
                threshold: s.threshold,
                fast: s.fast,
                slow: s.slow,
                state: s.state.name().to_string(),
            })
            .collect(),
        fast: window_doc(&fast),
        slow: window_doc(&slow),
        queue_depth: depth,
        in_flight,
        exemplars: state
            .recorder
            .slowest_ids(5)
            .into_iter()
            .map(|(trace_id, total_ns)| ExemplarDoc { trace_id, total_ns })
            .collect(),
    };
    let status = if verdict.state == SloState::Breaching {
        "503 Service Unavailable"
    } else {
        "200 OK"
    };
    let body = serde_json::to_string(&doc).map_err(|e| format!("health doc to JSON: {e}"))?;
    Ok((status, body))
}

/// The `/debug/timeseries` body: at most `limit` retained frames,
/// oldest first.
fn timeseries_body(state: &ServerState, limit: usize) -> Result<String, String> {
    let ring = lock(&state.rollup);
    let skip = ring.len().saturating_sub(limit);
    let doc = TimeseriesDoc {
        interval_ms: state.rollup_interval.as_millis() as u64,
        capacity: ring.capacity() as u64,
        ticks: ring.ticks(),
        frames: ring
            .frames_oldest_first()
            .skip(skip)
            .map(|f| {
                let requests = f.counter(Counter::ServeRequests);
                FrameDoc {
                    seq: f.seq,
                    uptime_s: f.uptime_s,
                    interval_s: f.interval_s,
                    requests,
                    errors: f.counter(Counter::ServeErrors),
                    dropped: f.counter(Counter::ServeDeadlineDropped),
                    coalesced: f.counter(Counter::ServeCoalescedRequests),
                    qps: if f.interval_s > 0.0 {
                        requests as f64 / f.interval_s
                    } else {
                        0.0
                    },
                    p50_ms: f.quantile(Hist::ServeRequestNs, 0.5) / 1e6,
                    p99_ms: f.quantile(Hist::ServeRequestNs, 0.99) / 1e6,
                    queries: f.counter(Counter::Queries),
                    top_down_steps: f.counter(Counter::TopDownSteps),
                    bottom_up_steps: f.counter(Counter::BottomUpSteps),
                    queue_depth: f.queue_depth,
                    in_flight: f.in_flight,
                }
            })
            .collect(),
    };
    serde_json::to_string(&doc).map_err(|e| format!("timeseries doc to JSON: {e}"))
}

/// Seconds a shed client should wait before retrying, from the fast
/// window's drain rate: the time to drain the queue at the current
/// answered-requests rate, clamped to `1..=60`. With no drain signal
/// (cold ring, idle window) the floor of 1s applies.
fn retry_after_s(state: &ServerState, depth: u64) -> u64 {
    let drain = lock(&state.rollup).window(state.fast_ticks).qps();
    if drain > 0.0 {
        (depth as f64 / drain).ceil().clamp(1.0, 60.0) as u64
    } else {
        1
    }
}

/// The `/metrics` body, rendered at scrape time from the published
/// per-session snapshots plus the live gauges and build-info series.
fn metrics_body(state: &ServerState) -> String {
    let mut body = prom::render(&merged_snapshot(state));
    let (depth, in_flight) = admission_levels(state);
    prom::render_gauge(
        &mut body,
        "fastbfs_sessions",
        "Parked warm sessions serving the admission queue",
        &[],
        state.sessions.len() as f64,
    );
    let busy: Vec<(String, f64)> = state
        .sessions
        .iter()
        .enumerate()
        .map(|(i, s)| (i.to_string(), s.busy.load(Ordering::Relaxed) as f64))
        .collect();
    prom::render_labeled_gauge(
        &mut body,
        "fastbfs_session_busy",
        "1 while the session is warming up or executing a wave, 0 while parked",
        "session",
        &busy,
    );
    let served: Vec<(String, u64)> = state
        .sessions
        .iter()
        .enumerate()
        .map(|(i, s)| (i.to_string(), s.served.load(Ordering::Relaxed)))
        .collect();
    prom::render_labeled_counter(
        &mut body,
        "fastbfs_session_requests_total",
        "Requests answered by this session (executed or deadline-dropped)",
        "session",
        &served,
    );
    prom::render_gauge(
        &mut body,
        "fastbfs_queue_depth",
        "Requests waiting in the admission queue",
        &[],
        depth as f64,
    );
    prom::render_gauge(
        &mut body,
        "fastbfs_in_flight",
        "Requests popped by a session and not yet answered",
        &[],
        in_flight as f64,
    );
    prom::render_gauge(
        &mut body,
        "fastbfs_uptime_seconds",
        "Seconds since the server started",
        &[],
        state.started.elapsed().as_secs_f64(),
    );
    prom::render_build_info(
        &mut body,
        state.version,
        state.git_rev.as_deref(),
        state.rustc.as_deref(),
    );
    body
}

/// The `/snapshot` body, rendered at scrape time.
fn snapshot_body(state: &ServerState) -> Result<String, String> {
    let (depth, in_flight) = admission_levels(state);
    let doc = SnapshotDoc {
        queries: state
            .sessions
            .iter()
            .map(|s| s.traversals.load(Ordering::Relaxed))
            .sum(),
        uptime_s: state.started.elapsed().as_secs_f64(),
        queue_depth: depth,
        in_flight,
        sessions: state.sessions.len() as u64,
        session_requests: state
            .sessions
            .iter()
            .map(|s| s.served.load(Ordering::Relaxed))
            .collect(),
        hw: state.hw.clone(),
        hw_available: state.hw_kind.is_none(),
        hw_kind: state.hw_kind.clone(),
        hw_reason: state.hw_reason.clone(),
        metrics: merged_snapshot(state),
    };
    serde_json::to_string(&doc).map_err(|e| format!("snapshot to JSON: {e}"))
}

// ---- HTTP workers -------------------------------------------------------

/// One HTTP worker: accept → parse → validate → enqueue → await reply.
/// Owns the serialization buffer that rides along inside each admitted
/// job and is recycled across this worker's requests.
fn http_worker(listener: &TcpListener, state: &ServerState, num_vertices: usize) {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if state.stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok((mut stream, _)) = listener.accept() else {
            continue;
        };
        if state.stop.load(Ordering::Relaxed) {
            return; // woken by wake_workers
        }
        let arrival = Instant::now();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let req = match http::read_request(&mut stream) {
            Ok(r) => r,
            Err(RequestError::Io) => continue,
            Err(RequestError::Bad(msg)) => {
                state.http_errors.fetch_add(1, Ordering::Relaxed);
                http::write_json_error(&mut stream, "400 Bad Request", msg);
                continue;
            }
        };
        if handle(&req, &mut stream, arrival, state, num_vertices, &mut buf) {
            state.stop.store(true, Ordering::Relaxed);
            lock(&state.admission).stop = true;
            state.available.notify_all();
            // Unblock the sibling workers (dispatchers notice via the
            // condvar and drain whatever was admitted).
            wake_workers(state, 64);
            return;
        }
    }
}

/// Routes one request; returns true when it was the shutdown endpoint.
fn handle(
    req: &Request,
    stream: &mut TcpStream,
    arrival: Instant,
    state: &ServerState,
    num_vertices: usize,
    buf: &mut Vec<u8>,
) -> bool {
    let mut client_error = |status: &str, msg: &str| {
        state.http_errors.fetch_add(1, Ordering::Relaxed);
        http::write_json_error(stream, status, msg);
        false
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            http::write_response(stream, "200 OK", "text/plain; charset=utf-8", b"ok\n");
            false
        }
        ("GET", "/metrics") => {
            http::write_response(
                stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                metrics_body(state).as_bytes(),
            );
            false
        }
        ("GET", "/snapshot") => {
            match snapshot_body(state) {
                Ok(body) => http::write_json(stream, "200 OK", &body),
                Err(e) => http::write_json_error(stream, "500 Internal Server Error", &e),
            }
            false
        }
        ("GET", "/graph") => {
            http::write_json(stream, "200 OK", &state.graph_json);
            false
        }
        ("GET", "/quitquitquit") => {
            http::write_response(stream, "200 OK", "text/plain; charset=utf-8", b"bye\n");
            true
        }
        // Diagnostic reads are answered on the listener thread, same as
        // /metrics and /snapshot: they must stay reachable when the
        // admission queue is saturated — that is exactly when they are
        // needed.
        ("GET", "/debug/slow") => {
            let limit = match parse_limit(req, 20) {
                Ok(n) => n,
                Err(msg) => return client_error("400 Bad Request", &msg),
            };
            let doc = SlowDoc {
                threshold_ns: lock(&state.sampler).rolling_threshold_ns(),
                slow_ms: state.slow_ms,
                stats: state.recorder.stats(),
                slow: state.recorder.slow_ranked(limit),
            };
            match serde_json::to_string(&doc) {
                Ok(body) => http::write_json(stream, "200 OK", &body),
                Err(e) => http::write_json_error(
                    stream,
                    "500 Internal Server Error",
                    &format!("slow doc to JSON: {e}"),
                ),
            }
            false
        }
        ("GET", "/debug/health") => {
            match health_body(state) {
                Ok((status, body)) => http::write_json(stream, status, &body),
                Err(e) => http::write_json_error(stream, "500 Internal Server Error", &e),
            }
            false
        }
        ("GET", "/debug/timeseries") => {
            let limit = match parse_limit(req, usize::MAX) {
                Ok(n) => n,
                Err(msg) => return client_error("400 Bad Request", &msg),
            };
            match timeseries_body(state, limit) {
                Ok(body) => http::write_json(stream, "200 OK", &body),
                Err(e) => http::write_json_error(stream, "500 Internal Server Error", &e),
            }
            false
        }
        ("GET", p) if p.starts_with("/debug/trace/") => {
            let tid = &p["/debug/trace/".len()..];
            let rendered = match state.recorder.lookup(tid) {
                Some(TraceLookup::Full(t)) => serde_json::to_string(&t),
                Some(TraceLookup::Digest(d)) => serde_json::to_string(&d),
                None => {
                    return client_error(
                        "404 Not Found",
                        &format!("no retained trace with id {tid:?} (evicted or never recorded)"),
                    )
                }
            };
            match rendered {
                Ok(body) => http::write_json(stream, "200 OK", &body),
                Err(e) => http::write_json_error(
                    stream,
                    "500 Internal Server Error",
                    &format!("trace to JSON: {e}"),
                ),
            }
            false
        }
        ("GET", "/query") | ("GET", "/path") | ("POST", "/query") => {
            // Trace id first: the failure paths below record traces under
            // it. Client-supplied ids are validated; otherwise the id is
            // derived from the request id the response echoes anyway.
            let id = state.next_id.fetch_add(1, Ordering::Relaxed) + 1;
            let trace_id = match req.header("trace-id") {
                Some(raw) if !valid_trace_id(raw) => {
                    return client_error(
                        "400 Bad Request",
                        &format!(
                            "Trace-Id header {raw:?} invalid (want 1-64 chars of [A-Za-z0-9_.-])"
                        ),
                    )
                }
                Some(raw) => raw.to_string(),
                None => format!("req-{id}"),
            };
            let query_desc = format!("{} {}", req.method, req.path);
            let kind = match parse_query_request(req) {
                Ok(k) => k,
                Err(msg) => {
                    record_failure_trace(
                        state,
                        trace_id,
                        query_desc,
                        400,
                        "client_error",
                        &msg,
                        arrival,
                        elapsed_ns(arrival),
                    );
                    return client_error("400 Bad Request", &msg);
                }
            };
            if let Err(e) = kind.validate(num_vertices) {
                let msg = e.to_string();
                record_failure_trace(
                    state,
                    trace_id,
                    query_desc,
                    422,
                    "client_error",
                    &msg,
                    arrival,
                    elapsed_ns(arrival),
                );
                return client_error("422 Unprocessable Entity", &msg);
            }
            // Per-request deadline: the client's Deadline-Ms header wins
            // over the server-wide --deadline-ms default. A budget of 0
            // is already expired at the next pop — useful for tests and
            // for "only if free right now" probes.
            let deadline_ms = match req.header("deadline-ms") {
                Some(raw) => match raw.parse::<u64>() {
                    Ok(ms) => Some(ms),
                    Err(_) => {
                        let msg = format!("Deadline-Ms header {raw:?} is not a millisecond count");
                        record_failure_trace(
                            state,
                            trace_id,
                            query_desc,
                            400,
                            "client_error",
                            &msg,
                            arrival,
                            elapsed_ns(arrival),
                        );
                        return client_error("400 Bad Request", &msg);
                    }
                },
                None => state.default_deadline_ms,
            };
            let deadline =
                deadline_ms.and_then(|ms| arrival.checked_add(Duration::from_millis(ms)));
            enqueue_and_reply(
                stream, arrival, state, id, trace_id, query_desc, kind, deadline, buf,
            );
            false
        }
        (
            _,
            "/healthz" | "/metrics" | "/snapshot" | "/graph" | "/quitquitquit" | "/query" | "/path",
        ) => client_error(
            "405 Method Not Allowed",
            &format!("{} not allowed", req.method),
        ),
        (_, p)
            if p == "/debug/slow"
                || p == "/debug/health"
                || p == "/debug/timeseries"
                || p.starts_with("/debug/trace/") =>
        {
            client_error(
                "405 Method Not Allowed",
                &format!("{} not allowed", req.method),
            )
        }
        _ => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            http::write_response(
                stream,
                "404 Not Found",
                "text/plain; charset=utf-8",
                b"not found\n",
            );
            false
        }
    }
}

/// Parses the `?n=` list cap shared by `/debug/slow` and
/// `/debug/timeseries`. Absent means `default`; malformed is a 400 —
/// a diagnostic endpoint silently ignoring its only parameter hides
/// operator typos exactly when the answer matters.
fn parse_limit(req: &Request, default: usize) -> Result<usize, String> {
    match req.param("n") {
        None => Ok(default),
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| format!("query parameter n={raw:?} is not a count")),
    }
}

/// Parses a query-path request into a [`QueryKind`] (syntax only; range
/// checks are `validate`'s job).
fn parse_query_request(req: &Request) -> Result<QueryKind, String> {
    let vertex = |key: &str| -> Result<u32, String> {
        let raw = req
            .param(key)
            .ok_or_else(|| format!("missing query parameter {key:?} (expect {key}=<vertex id>)"))?;
        raw.parse()
            .map_err(|_| format!("query parameter {key}={raw:?} is not a vertex id"))
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/query") => Ok(QueryKind::Reach {
            src: vertex("src")?,
            dst: match req.param("dst") {
                Some(_) => Some(vertex("dst")?),
                None => None,
            },
        }),
        ("GET", "/path") => Ok(QueryKind::Path {
            src: vertex("src")?,
            dst: vertex("dst")?,
        }),
        ("POST", "/query") => {
            let text =
                std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
            let v = serde_json::parse(text)
                .map_err(|e| format!("body is not JSON ({e}); expect {{\"sources\":[...]}}"))?;
            let arr = v
                .get("sources")
                .and_then(|s| s.as_array())
                .ok_or_else(|| "body needs a \"sources\" array".to_string())?;
            let sources = arr
                .iter()
                .map(|s| {
                    s.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| format!("source {s:?} is not a vertex id"))
                })
                .collect::<Result<Vec<u32>, String>>()?;
            Ok(QueryKind::Batch { sources })
        }
        _ => unreachable!("routed in handle()"),
    }
}

/// Admits the request (or sheds it with 503) and relays the session's
/// reply, reclaiming the serialization buffer for the next request.
#[allow(clippy::too_many_arguments)]
fn enqueue_and_reply(
    stream: &mut TcpStream,
    arrival: Instant,
    state: &ServerState,
    id: u64,
    trace_id: String,
    query_desc: String,
    kind: QueryKind,
    deadline: Option<Instant>,
    buf: &mut Vec<u8>,
) {
    let parse_ns = elapsed_ns(arrival);
    let (rtx, rrx) = mpsc::channel();
    {
        let mut adm = lock(&state.admission);
        if adm.stop || adm.queue.len() >= state.queue_cap {
            let msg = if adm.stop {
                "server shutting down"
            } else {
                "admission queue full; retry later"
            };
            let depth = adm.queue.len() as u64;
            drop(adm);
            record_failure_trace(
                state, trace_id, query_desc, 503, "shed", msg, arrival, parse_ns,
            );
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            // Retry-After from the windowed drain rate: how long the
            // current queue takes to clear at the fast window's qps.
            let retry = retry_after_s(state, depth);
            http::write_json_error_with_headers(
                stream,
                "503 Service Unavailable",
                msg,
                &[("Retry-After", &retry.to_string())],
            );
            return;
        }
        buf.clear();
        adm.queue.push_back(Job {
            id,
            // The job carries clones so the dispatch-timeout arm below
            // can still record a trace after handing the originals off.
            trace_id: trace_id.clone(),
            query_desc: query_desc.clone(),
            kind,
            arrival,
            parse_ns,
            enqueued: Instant::now(),
            deadline,
            buf: std::mem::take(buf),
            resp: rtx,
        });
    }
    state.available.notify_one();
    match rrx.recv_timeout(DISPATCH_TIMEOUT) {
        Ok(reply) => {
            http::write_response(stream, reply.status, "application/json", &reply.body);
            // Recycle the buffer (and its high-water capacity) for this
            // worker's next response.
            *buf = reply.body;
        }
        Err(_) => {
            record_failure_trace(
                state,
                trace_id,
                query_desc,
                504,
                "timeout",
                "dispatch timed out",
                arrival,
                parse_ns,
            );
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            http::write_json_error(stream, "504 Gateway Timeout", "dispatch timed out");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    /// Starts `serve` on an ephemeral port and resolves the bound address.
    fn start(extra: &[&str]) -> (std::thread::JoinHandle<Result<(), String>>, String) {
        let addr_file = std::env::temp_dir().join(format!(
            "fastbfs_serve_test_{}_{:p}",
            std::process::id(),
            extra
        ));
        let addr_path = addr_file.to_str().unwrap().to_string();
        let mut args: Vec<String> = [
            "--family",
            "ur",
            "--vertices",
            "400",
            "--degree",
            "4",
            "--threads",
            "2",
            "--metrics-addr",
            "127.0.0.1:0",
            "--addr-file",
            &addr_path,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        args.extend(extra.iter().map(|s| s.to_string()));
        let driver = std::thread::spawn(move || serve(&args));
        let addr = {
            let mut tries = 0;
            loop {
                match std::fs::read_to_string(&addr_file) {
                    Ok(s) if !s.is_empty() => break s,
                    _ => {
                        tries += 1;
                        assert!(tries < 1000, "listener never came up");
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        };
        std::fs::remove_file(&addr_file).ok();
        (driver, addr)
    }

    fn get(addr: &str, path: &str) -> http::Response {
        http::get(addr, path, Duration::from_secs(30)).unwrap()
    }

    /// First sample of a series in an exposition body (0 when absent).
    fn series_value(m: &str, name: &str) -> u64 {
        m.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<f64>().ok())
            .map(|v| v as u64)
            .unwrap_or(0)
    }

    /// The result payload of a /query response body: everything between
    /// the id (varies per request) and the spans (vary per execution).
    fn core_of(body: &str) -> String {
        let start = body.find("\"src\"").expect("src field");
        let end = body.find(",\"spans\"").expect("spans field");
        body[start..end].to_string()
    }

    #[test]
    fn query_endpoints_answer_with_spans_and_ids() {
        let (driver, addr) = start(&[]);
        assert!(get(&addr, "/healthz").body.ends_with("ok\n"));

        // /graph advertises the source range.
        let graph = get(&addr, "/graph");
        let gv = serde_json::parse(&graph.body).unwrap();
        assert_eq!(gv.get("vertices").and_then(|v| v.as_u64()), Some(400));

        // Reachability query with a dst probe.
        let r = get(&addr, "/query?src=0&dst=5");
        assert!(r.ok(), "{} {}", r.status, r.body);
        let v = serde_json::parse(&r.body).unwrap();
        assert_eq!(v.get("src").and_then(|x| x.as_u64()), Some(0));
        assert!(v.get("id").and_then(|x| x.as_u64()).unwrap_or(0) > 0);
        assert!(
            v.get("visited_vertices")
                .and_then(|x| x.as_u64())
                .unwrap_or(0)
                > 0
        );
        let spans = v.get("spans").expect("lifecycle spans");
        for key in ["parse_ns", "queue_ns", "execute_ns", "session", "wave"] {
            assert!(spans.get(key).and_then(|x| x.as_u64()).is_some(), "{key}");
        }
        assert!(spans.get("execute_ns").and_then(|x| x.as_u64()).unwrap() > 0);
        // A lone request executes as a wave of one.
        assert_eq!(spans.get("wave").and_then(|x| x.as_u64()), Some(1));

        // Path query: endpoints must match the request.
        let p = get(&addr, "/path?src=0&dst=17");
        assert!(p.ok(), "{} {}", p.status, p.body);
        let v = serde_json::parse(&p.body).unwrap();
        if v.get("reached").and_then(|x| x.as_bool()) == Some(true) {
            let path = v.get("path").and_then(|x| x.as_array()).unwrap();
            assert_eq!(path.first().and_then(Value::as_u64), Some(0));
            assert_eq!(path.last().and_then(Value::as_u64), Some(17));
        }

        // Batched POST.
        let b = http::post_json(
            &addr,
            "/query",
            "{\"sources\":[0,7,399]}",
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(b.ok(), "{} {}", b.status, b.body);
        let v = serde_json::parse(&b.body).unwrap();
        let rows = v.get("results").and_then(|x| x.as_array()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].get("src").and_then(|x| x.as_u64()), Some(399));

        // The lifecycle series made it into the exposition, along with
        // the pool series, gauges, and build info.
        let m = get(&addr, "/metrics").body;
        // Three dispatched jobs: GET /query, GET /path, one batched POST
        // (a batch is one admission-queue job however many sources it has).
        assert!(series_value(&m, "fastbfs_serve_requests_total") >= 3, "{m}");
        assert!(series_value(&m, "fastbfs_serve_exec_ns_total") > 0, "{m}");
        assert!(
            series_value(&m, "fastbfs_serve_request_ns_count") >= 3,
            "{m}"
        );
        assert!(series_value(&m, "fastbfs_sessions") >= 1, "{m}");
        assert!(m.contains("fastbfs_session_busy{session=\"0\"}"), "{m}");
        assert!(
            m.contains("fastbfs_session_requests_total{session=\"0\"}"),
            "{m}"
        );
        assert!(m.contains("fastbfs_queue_depth"), "{m}");
        assert!(m.contains("fastbfs_in_flight"), "{m}");
        assert!(m.contains("fastbfs_uptime_seconds"), "{m}");
        assert!(m.contains("fastbfs_build_info{version=\""), "{m}");

        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_and_out_of_range_requests_get_json_errors() {
        let (driver, addr) = start(&[]);

        // 400: missing/malformed parameters.
        for path in ["/query", "/query?src=banana", "/path?src=1"] {
            let r = get(&addr, path);
            assert_eq!(r.status, 400, "{path}: {}", r.body);
            let v = serde_json::parse(&r.body).unwrap();
            assert!(v.get("error").and_then(|e| e.as_str()).is_some(), "{path}");
        }
        // 400: bad POST bodies.
        for body in ["not json", "{\"sources\":7}", "{\"sources\":[1,-2]}"] {
            let r = http::post_json(&addr, "/query", body, Duration::from_secs(30)).unwrap();
            assert_eq!(r.status, 400, "{body:?}: {}", r.body);
        }
        // 422: well-formed but impossible (graph has 400 vertices).
        for path in ["/query?src=400", "/path?src=0&dst=9999"] {
            let r = get(&addr, path);
            assert_eq!(r.status, 422, "{path}: {}", r.body);
            let msg = serde_json::parse(&r.body)
                .unwrap()
                .get("error")
                .and_then(|e| e.as_str())
                .unwrap()
                .to_string();
            assert!(msg.contains("out of range"), "{msg}");
        }
        let r =
            http::post_json(&addr, "/query", "{\"sources\":[]}", Duration::from_secs(30)).unwrap();
        assert_eq!(r.status, 422, "{}", r.body);

        // 405 on wrong method, 404 on unknown paths.
        let r = http::post_json(&addr, "/metrics", "", Duration::from_secs(30)).unwrap();
        assert_eq!(r.status, 405, "{}", r.body);
        assert_eq!(get(&addr, "/nope").status, 404);

        // The failures are visible as serve_errors after the next
        // successful request flushes the tally.
        assert!(get(&addr, "/query?src=0").ok());
        let m = get(&addr, "/metrics").body;
        let errs = series_value(&m, "fastbfs_serve_errors_total");
        assert!(errs >= 9, "expected >= 9 recorded errors, got {errs}\n{m}");

        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    #[test]
    fn warmup_queries_prime_the_session_and_snapshot_is_structured() {
        let (driver, addr) = start(&["--queries", "12", "--sources", "3"]);
        // Warmup traversals land in the registry before any request.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let m = get(&addr, "/metrics").body;
            if series_value(&m, "fastbfs_queries_total") >= 12 {
                break;
            }
            assert!(Instant::now() < deadline, "warmup never finished: {m}");
            std::thread::sleep(Duration::from_millis(20));
        }
        let snap = get(&addr, "/snapshot").body;
        let v = serde_json::parse(&snap).unwrap();
        assert!(v.get("queries").and_then(|x| x.as_u64()).unwrap() >= 12);
        assert!(v.get("uptime_s").and_then(|x| x.as_f64()).unwrap() >= 0.0);
        // Pool accounting: a session count and a per-session request row
        // for each member.
        let sessions = v.get("sessions").and_then(|x| x.as_u64()).unwrap();
        assert!(sessions >= 1, "{snap}");
        let rows = v
            .get("session_requests")
            .and_then(|x| x.as_array())
            .unwrap();
        assert_eq!(rows.len() as u64, sessions, "{snap}");
        // Structured hw fields: available xor (kind + reason).
        let available = v.get("hw_available").and_then(|x| x.as_bool()).unwrap();
        let kind = v
            .get("hw_kind")
            .and_then(|x| x.as_str())
            .map(str::to_string);
        let reason = v
            .get("hw_reason")
            .and_then(|x| x.as_str())
            .map(str::to_string);
        if available {
            assert!(kind.is_none() && reason.is_none(), "{snap}");
        } else {
            assert!(kind.is_some() && reason.is_some(), "{snap}");
        }
        // The legacy string stays consistent with the structured fields.
        let hw = v.get("hw").and_then(|x| x.as_str()).unwrap();
        assert_eq!(available, hw == "available", "{hw}");

        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    #[test]
    fn deadline_expired_requests_are_dropped_without_executing() {
        let (driver, addr) = start(&["--sessions", "1"]);
        // A zero budget has always lapsed by the time a session pops the
        // job: deterministic 504, and the span proves nothing executed.
        let r = http::get_with_headers(
            &addr,
            "/query?src=0&dst=5",
            &[("Deadline-Ms", "0")],
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(r.status, 504, "{} {}", r.status, r.body);
        let v = serde_json::parse(&r.body).unwrap();
        assert!(
            v.get("error")
                .and_then(|e| e.as_str())
                .unwrap()
                .contains("deadline"),
            "{}",
            r.body
        );
        assert!(v.get("id").and_then(|x| x.as_u64()).unwrap() > 0);
        let spans = v.get("spans").expect("dropped requests keep their spans");
        assert_eq!(spans.get("execute_ns").and_then(|x| x.as_u64()), Some(0));
        assert_eq!(spans.get("wave").and_then(|x| x.as_u64()), Some(0));
        assert!(spans.get("queue_ns").and_then(|x| x.as_u64()).is_some());

        // A malformed header is a client error, not a query.
        let r = http::get_with_headers(
            &addr,
            "/query?src=0",
            &[("Deadline-Ms", "soon")],
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(r.status, 400, "{}", r.body);

        // A generous budget executes normally.
        let r = http::get_with_headers(
            &addr,
            "/query?src=0",
            &[("Deadline-Ms", "30000")],
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(r.ok(), "{} {}", r.status, r.body);
        let v = serde_json::parse(&r.body).unwrap();
        let spans = v.get("spans").unwrap();
        assert!(spans.get("execute_ns").and_then(|x| x.as_u64()).unwrap() > 0);

        let m = get(&addr, "/metrics").body;
        assert!(
            series_value(&m, "fastbfs_serve_deadline_dropped_total") >= 1,
            "{m}"
        );

        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    #[test]
    fn server_default_deadline_applies_when_no_header_is_sent() {
        let (driver, addr) = start(&["--sessions", "1", "--deadline-ms", "0"]);
        let r = get(&addr, "/query?src=1");
        assert_eq!(r.status, 504, "{} {}", r.status, r.body);
        // The client's header overrides the server default upward.
        let r = http::get_with_headers(
            &addr,
            "/query?src=1",
            &[("Deadline-Ms", "30000")],
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(r.ok(), "{} {}", r.status, r.body);
        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    #[test]
    fn coalesced_waves_answer_identically_to_solo_queries() {
        // One session, one lane: parents are deterministic, so answers
        // can be compared byte-for-byte (minus per-request id/spans).
        let (driver, addr) = start(&["--sessions", "1", "--threads", "1"]);
        let queries: Vec<(u32, u32)> = (0..8u32)
            .map(|i| (i * 13 % 400, (i * 37 + 5) % 400))
            .collect();
        let solo: Vec<String> = queries
            .iter()
            .map(|(s, d)| {
                let r = get(&addr, &format!("/query?src={s}&dst={d}"));
                assert!(r.ok(), "{} {}", r.status, r.body);
                core_of(&r.body)
            })
            .collect();

        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            // Occupy the lone session with a slow batch, then burst the
            // reach queries so they pile up behind it and coalesce.
            let addr2 = addr.clone();
            let batch = std::thread::spawn(move || {
                let sources: Vec<String> = (0..400u32).map(|i| i.to_string()).collect();
                let body = format!("{{\"sources\":[{}]}}", sources.join(","));
                http::post_json(&addr2, "/query", &body, Duration::from_secs(30)).unwrap()
            });
            let burst: Vec<_> = queries
                .iter()
                .map(|&(s, d)| {
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        http::get(
                            &addr,
                            &format!("/query?src={s}&dst={d}"),
                            Duration::from_secs(30),
                        )
                        .unwrap()
                    })
                })
                .collect();
            assert!(batch.join().unwrap().ok());
            for (h, want) in burst.into_iter().zip(&solo) {
                let r = h.join().unwrap();
                assert!(r.ok(), "{} {}", r.status, r.body);
                assert_eq!(&core_of(&r.body), want, "coalesced answer differs");
            }
            let m = get(&addr, "/metrics").body;
            if series_value(&m, "fastbfs_serve_coalesced_requests_total") >= 2 {
                assert!(series_value(&m, "fastbfs_serve_coalesced_waves_total") >= 1);
                break;
            }
            assert!(Instant::now() < deadline, "no wave ever coalesced:\n{m}");
        }
        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    /// The tentpole, end to end: a request is retrievable by its trace
    /// id with lifecycle spans, placement, and the executing session's
    /// per-level digest; `/debug/slow` ranks retained traces.
    #[test]
    fn slow_traces_resolve_end_to_end_with_level_digests() {
        let (driver, addr) = start(&["--slow-ms", "0", "--sessions", "1"]);

        // Client-stamped Trace-Id echoes in the response JSON.
        let r = http::get_with_headers(
            &addr,
            "/query?src=0&dst=5",
            &[("Trace-Id", "triage-1")],
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(r.ok(), "{} {}", r.status, r.body);
        let v = serde_json::parse(&r.body).unwrap();
        assert_eq!(v.get("trace_id").and_then(|x| x.as_str()), Some("triage-1"));

        // Without the header the server generates one tied to the id.
        let r = get(&addr, "/query?src=1");
        assert!(r.ok(), "{} {}", r.status, r.body);
        let v = serde_json::parse(&r.body).unwrap();
        let generated = v
            .get("trace_id")
            .and_then(|x| x.as_str())
            .unwrap()
            .to_string();
        assert!(generated.starts_with("req-"), "{generated}");

        // --slow-ms 0 keeps every trace: the full document resolves by
        // id, spans nest inside the total, and the per-level digest
        // carries direction/frontier/phase breakdowns.
        let t = get(&addr, "/debug/trace/triage-1");
        assert!(t.ok(), "{} {}", t.status, t.body);
        let tv = serde_json::parse(&t.body).unwrap();
        assert_eq!(tv.get("status").and_then(|x| x.as_u64()), Some(200));
        assert_eq!(tv.get("outcome").and_then(|x| x.as_str()), Some("ok"));
        assert_eq!(tv.get("sampled").and_then(|x| x.as_bool()), Some(true));
        assert_eq!(tv.get("query").and_then(|x| x.as_str()), Some("GET /query"));
        assert_eq!(tv.get("session").and_then(|x| x.as_u64()), Some(0));
        assert_eq!(tv.get("wave").and_then(|x| x.as_u64()), Some(1));
        let total = tv.get("total_ns").and_then(|x| x.as_u64()).unwrap();
        let span_sum: u64 = ["parse_ns", "queue_ns", "execute_ns", "serialize_ns"]
            .iter()
            .map(|k| tv.get(k).and_then(|x| x.as_u64()).unwrap())
            .sum();
        assert!(span_sum <= total, "spans {span_sum} exceed total {total}");
        assert!(tv.get("execute_ns").and_then(|x| x.as_u64()).unwrap() > 0);
        let levels = tv.get("levels").and_then(|x| x.as_array()).unwrap();
        assert!(!levels.is_empty(), "{}", t.body);
        for key in ["step", "frontier", "phase1_ns", "phase2_ns", "rearrange_ns"] {
            assert!(
                levels[0].get(key).and_then(|x| x.as_u64()).is_some(),
                "{key}"
            );
        }
        assert!(levels[0]
            .get("top_down")
            .and_then(|x| x.as_bool())
            .is_some());
        assert!(levels[0].get("frontier").and_then(|x| x.as_u64()).unwrap() > 0);

        // /debug/slow ranks the retained traces slowest-first and both
        // ids appear.
        let s = get(&addr, "/debug/slow");
        assert!(s.ok(), "{} {}", s.status, s.body);
        let sv = serde_json::parse(&s.body).unwrap();
        let slow = sv.get("slow").and_then(|x| x.as_array()).unwrap();
        assert!(slow.len() >= 2, "{}", s.body);
        let totals: Vec<u64> = slow
            .iter()
            .map(|t| t.get("total_ns").and_then(|x| x.as_u64()).unwrap())
            .collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]), "{totals:?}");
        let ids: Vec<&str> = slow
            .iter()
            .map(|t| t.get("id").and_then(|x| x.as_str()).unwrap())
            .collect();
        assert!(ids.contains(&"triage-1"), "{ids:?}");
        assert!(ids.contains(&generated.as_str()), "{ids:?}");
        assert!(sv
            .get("stats")
            .and_then(|x| x.get("retained_full"))
            .is_some());

        // Sampler decisions are visible in the exposition.
        let m = get(&addr, "/metrics").body;
        assert!(
            series_value(&m, "fastbfs_serve_trace_sampled_total") >= 2,
            "{m}"
        );

        // Guard rails: invalid client ids are rejected, unknown ids 404,
        // wrong methods 405.
        let bad = http::get_with_headers(
            &addr,
            "/query?src=0",
            &[("Trace-Id", "has spaces")],
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(bad.status, 400, "{}", bad.body);
        assert_eq!(get(&addr, "/debug/trace/never-recorded").status, 404);
        let r = http::post_json(&addr, "/debug/slow", "", Duration::from_secs(30)).unwrap();
        assert_eq!(r.status, 405, "{}", r.body);

        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    /// Tail-sampling policy: failures (422, deadline drops) always keep
    /// full traces, while a fast success under a cold sampler (no
    /// `--slow-ms`, fewer observations than warmup) retains only the
    /// id+latency digest.
    #[test]
    fn failures_keep_full_traces_and_fast_successes_stay_digest_only() {
        let (driver, addr) = start(&["--sessions", "1"]);

        // 422: recorded worker-side, before any session was involved.
        let r = http::get_with_headers(
            &addr,
            "/query?src=99999",
            &[("Trace-Id", "bad.vertex")],
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(r.status, 422, "{}", r.body);
        let t = get(&addr, "/debug/trace/bad.vertex");
        assert!(t.ok(), "{} {}", t.status, t.body);
        let tv = serde_json::parse(&t.body).unwrap();
        assert_eq!(tv.get("status").and_then(|x| x.as_u64()), Some(422));
        assert_eq!(
            tv.get("outcome").and_then(|x| x.as_str()),
            Some("client_error")
        );
        assert!(tv.get("error").and_then(|x| x.as_str()).is_some());
        assert!(tv.get("session").and_then(|x| x.as_u64()).is_none());

        // Deadline-dropped: 504 at pop time, executed nothing, but the
        // trace names the session that dropped it.
        let r = http::get_with_headers(
            &addr,
            "/query?src=0",
            &[("Trace-Id", "doomed"), ("Deadline-Ms", "0")],
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(r.status, 504, "{}", r.body);
        let t = get(&addr, "/debug/trace/doomed");
        assert!(t.ok(), "{} {}", t.status, t.body);
        let tv = serde_json::parse(&t.body).unwrap();
        assert_eq!(tv.get("status").and_then(|x| x.as_u64()), Some(504));
        assert_eq!(
            tv.get("outcome").and_then(|x| x.as_str()),
            Some("deadline_dropped")
        );
        assert_eq!(tv.get("execute_ns").and_then(|x| x.as_u64()), Some(0));
        assert_eq!(tv.get("wave").and_then(|x| x.as_u64()), Some(0));
        assert_eq!(tv.get("session").and_then(|x| x.as_u64()), Some(0));

        // A fast success: the sampler has seen fewer than its warmup
        // window of observations and no absolute floor is set, so the
        // trace lands in the digest tier (id + latency only, no levels).
        let r = http::get_with_headers(
            &addr,
            "/query?src=1",
            &[("Trace-Id", "routine")],
            Duration::from_secs(30),
        )
        .unwrap();
        assert!(r.ok(), "{} {}", r.status, r.body);
        let t = get(&addr, "/debug/trace/routine");
        assert!(t.ok(), "{} {}", t.status, t.body);
        let tv = serde_json::parse(&t.body).unwrap();
        assert_eq!(tv.get("sampled").and_then(|x| x.as_bool()), Some(false));
        assert_eq!(tv.get("status").and_then(|x| x.as_u64()), Some(200));
        assert!(tv.get("levels").is_none(), "digest tier: {}", t.body);

        let m = get(&addr, "/metrics").body;
        assert!(
            series_value(&m, "fastbfs_serve_trace_sampled_total") >= 2,
            "{m}"
        );
        assert!(
            series_value(&m, "fastbfs_serve_trace_digest_total") >= 1,
            "{m}"
        );

        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    /// The satellite fix as a regression test: `/metrics` and `/debug/*`
    /// answer from the listener thread and never pass through the
    /// admission queue — a saturated queue (proved by a 503-shed probe)
    /// must not stop them.
    #[test]
    fn debug_and_metrics_bypass_a_saturated_admission_queue() {
        let (driver, addr) = start(&[
            "--sessions",
            "1",
            "--threads",
            "1",
            "--queue-cap",
            "1",
            "--vertices",
            "2000",
        ]);
        let deadline = Instant::now() + Duration::from_secs(60);
        'attempt: loop {
            // Park the lone session on a long batch, then lodge one
            // query in the queue (cap 1) behind it.
            let addr2 = addr.clone();
            let batch = std::thread::spawn(move || {
                let sources: Vec<String> = (0..512u32).map(|i| i.to_string()).collect();
                let body = format!("{{\"sources\":[{}]}}", sources.join(","));
                http::post_json(&addr2, "/query", &body, Duration::from_secs(60)).unwrap()
            });
            // Give the dispatcher a moment to pop the batch so the
            // filler lands in the emptied queue (shed is tolerated: the
            // queue was full either way).
            std::thread::sleep(Duration::from_millis(20));
            let addr3 = addr.clone();
            let filler = std::thread::spawn(move || {
                http::get(&addr3, "/query?src=0", Duration::from_secs(60)).unwrap()
            });
            // Wait until the queue is visibly full, then prove it: a
            // probe is shed with 503 and its trace records the shed.
            let mut saturated = false;
            while Instant::now() < deadline {
                let m = get(&addr, "/metrics").body;
                if series_value(&m, "fastbfs_queue_depth") >= 1 {
                    saturated = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            if saturated {
                let probe = http::get_with_headers(
                    &addr,
                    "/query?src=1",
                    &[("Trace-Id", "shed-probe")],
                    Duration::from_secs(30),
                )
                .unwrap();
                if probe.status == 503 {
                    // Queue saturated *right now* — the diagnostic reads
                    // must still answer immediately.
                    assert!(get(&addr, "/metrics").ok());
                    assert!(get(&addr, "/snapshot").ok());
                    assert!(get(&addr, "/debug/slow").ok());
                    let t = get(&addr, "/debug/trace/shed-probe");
                    assert!(t.ok(), "{} {}", t.status, t.body);
                    let tv = serde_json::parse(&t.body).unwrap();
                    assert_eq!(tv.get("status").and_then(|x| x.as_u64()), Some(503));
                    assert_eq!(tv.get("outcome").and_then(|x| x.as_str()), Some("shed"));
                    assert!(batch.join().unwrap().ok());
                    let f = filler.join().unwrap();
                    assert!(f.ok() || f.status == 503, "{} {}", f.status, f.body);
                    break 'attempt;
                }
            }
            // The batch outran us; drain this attempt and retry.
            assert!(batch.join().unwrap().ok());
            let f = filler.join().unwrap();
            assert!(f.ok() || f.status == 503, "{} {}", f.status, f.body);
            assert!(
                Instant::now() < deadline,
                "queue never stayed saturated long enough to probe"
            );
        }
        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    #[test]
    fn multi_session_pool_merges_metrics_and_exposes_per_session_series() {
        let (driver, addr) = start(&["--sessions", "2", "--queries", "8", "--sources", "4"]);
        // Warmup is striped across both sessions; the merged exposition
        // still accounts for all of it.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let m = get(&addr, "/metrics").body;
            if series_value(&m, "fastbfs_queries_total") >= 8 {
                break;
            }
            assert!(Instant::now() < deadline, "warmup never finished: {m}");
            std::thread::sleep(Duration::from_millis(20));
        }
        for i in 0..6 {
            assert!(get(&addr, &format!("/query?src={i}")).ok());
        }
        let labeled = |m: &str, name: &str, session: &str| -> u64 {
            let prefix = format!("{name}{{session=\"{session}\"}}");
            m.lines()
                .find(|l| l.starts_with(&prefix))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse::<f64>().ok())
                .map(|v| v as u64)
                .unwrap_or_else(|| panic!("{prefix} missing:\n{m}"))
        };
        let m1 = get(&addr, "/metrics").body;
        assert_eq!(series_value(&m1, "fastbfs_sessions"), 2, "{m1}");
        for s in ["0", "1"] {
            assert!(labeled(&m1, "fastbfs_session_busy", s) <= 1);
        }
        let served1: u64 = (0..2)
            .map(|s| labeled(&m1, "fastbfs_session_requests_total", &s.to_string()))
            .sum();
        assert!(served1 >= 6, "{m1}");
        let q1 = series_value(&m1, "fastbfs_queries_total");

        // Per-session counters and the merged totals are monotonic
        // across scrapes while traffic continues.
        for i in 0..4 {
            assert!(get(&addr, &format!("/query?src={}", i + 100)).ok());
        }
        let m2 = get(&addr, "/metrics").body;
        let served2: u64 = (0..2)
            .map(|s| labeled(&m2, "fastbfs_session_requests_total", &s.to_string()))
            .sum();
        assert!(served2 >= served1 + 4, "{served1} -> {served2}");
        assert!(series_value(&m2, "fastbfs_queries_total") >= q1);

        let snap = get(&addr, "/snapshot").body;
        let v = serde_json::parse(&snap).unwrap();
        assert_eq!(v.get("sessions").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(
            v.get("session_requests")
                .and_then(|x| x.as_array())
                .unwrap()
                .len(),
            2
        );

        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    /// The tentpole, end to end: with fast rollup ticks and a drop-rate
    /// SLO, `/debug/health` starts `ok`, flips to `breaching` (HTTP 503)
    /// under a `Deadline-Ms: 0` storm within the fast window, and
    /// recovers to non-breaching after a quiet slow window — while the
    /// since-boot aggregates in `/metrics` keep the storm forever.
    #[test]
    fn health_verdicts_flip_under_a_deadline_storm_and_recover() {
        let (driver, addr) = start(&[
            "--sessions",
            "1",
            "--rollup-interval-ms",
            "50",
            "--slo-fast-s",
            "0.5",
            "--slo-slow-s",
            "2",
            "--slo-drop-rate",
            "0.2",
        ]);

        // Clean traffic first, then wait out a full fast window so the
        // verdict is measured over post-traffic frames.
        for i in 0..4 {
            assert!(get(&addr, &format!("/query?src={i}")).ok());
        }
        std::thread::sleep(Duration::from_millis(700));
        let h = get(&addr, "/debug/health");
        assert!(h.ok(), "{} {}", h.status, h.body);
        let v = serde_json::parse(&h.body).unwrap();
        assert_eq!(v.get("state").and_then(|x| x.as_str()), Some("ok"));
        assert_eq!(v.get("queue_wedged").and_then(|x| x.as_bool()), Some(false));
        let slos = v.get("slos").and_then(|x| x.as_array()).unwrap();
        assert_eq!(slos.len(), 1, "{}", h.body);
        assert_eq!(
            slos[0].get("name").and_then(|x| x.as_str()),
            Some("drop_rate")
        );
        assert!(v.get("ticks").and_then(|x| x.as_u64()).unwrap() >= 2);
        for w in ["fast", "slow"] {
            let wd = v.get(w).expect(w);
            for key in ["qps", "p50_ms", "p99_ms", "error_rate", "drop_rate"] {
                assert!(wd.get(key).and_then(|x| x.as_f64()).is_some(), "{w}.{key}");
            }
        }

        // The storm: every request expires at pop time, so the windowed
        // drop rate goes to ~1.0 >> 0.2.
        for i in 0..12 {
            let r = http::get_with_headers(
                &addr,
                &format!("/query?src={i}"),
                &[("Deadline-Ms", "0")],
                Duration::from_secs(30),
            )
            .unwrap();
            assert_eq!(r.status, 504, "{} {}", r.status, r.body);
        }
        // Breach must surface within two fast windows (ISSUE: two fast-
        // window ticks); poll generously for CI but assert the flip.
        let deadline = Instant::now() + Duration::from_secs(10);
        let breached = loop {
            let h = get(&addr, "/debug/health");
            if h.status == 503 {
                break h;
            }
            assert!(
                Instant::now() < deadline,
                "health never breached: {}",
                h.body
            );
            std::thread::sleep(Duration::from_millis(25));
        };
        let v = serde_json::parse(&breached.body).unwrap();
        assert_eq!(v.get("state").and_then(|x| x.as_str()), Some("breaching"));
        let slos = v.get("slos").and_then(|x| x.as_array()).unwrap();
        assert_eq!(
            slos[0].get("state").and_then(|x| x.as_str()),
            Some("breaching")
        );
        assert!(slos[0].get("fast").and_then(|x| x.as_f64()).unwrap() > 0.2);
        // The breach carries exemplars resolvable by trace id (deadline
        // drops always keep full traces).
        let exemplars = v.get("exemplars").and_then(|x| x.as_array()).unwrap();
        assert!(!exemplars.is_empty(), "{}", breached.body);
        let eid = exemplars[0]
            .get("trace_id")
            .and_then(|x| x.as_str())
            .unwrap();
        assert!(get(&addr, &format!("/debug/trace/{eid}")).ok());

        // Since-boot aggregates still carry the storm (no reset): the
        // windowed layer is what recovers, not the counters.
        let m = get(&addr, "/metrics").body;
        assert!(
            series_value(&m, "fastbfs_serve_deadline_dropped_total") >= 12,
            "{m}"
        );

        // Quiet recovery: after the slow window passes with zero-delta
        // frames, the verdict returns to ok and /debug/health is 200.
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let h = get(&addr, "/debug/health");
            if h.ok() {
                let v = serde_json::parse(&h.body).unwrap();
                assert_ne!(
                    v.get("state").and_then(|x| x.as_str()),
                    Some("breaching"),
                    "200 with breaching state"
                );
                if v.get("state").and_then(|x| x.as_str()) == Some("ok") {
                    break;
                }
            }
            assert!(
                Instant::now() < deadline,
                "health never recovered: {}",
                h.body
            );
            std::thread::sleep(Duration::from_millis(50));
        }

        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    /// `/debug/timeseries` serves the retained delta frames with sane
    /// shapes, `?n=` caps the list, and malformed `n` is a 400 on both
    /// debug list endpoints (the satellite fix).
    #[test]
    fn timeseries_frames_and_limit_validation() {
        let (driver, addr) = start(&["--sessions", "1", "--rollup-interval-ms", "50"]);
        // Let the baseline tick land first: traffic served before it is
        // absorbed into the diffing baseline and belongs to no frame.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let t = get(&addr, "/debug/timeseries");
            assert!(t.ok(), "{} {}", t.status, t.body);
            let v = serde_json::parse(&t.body).unwrap();
            if !v
                .get("frames")
                .and_then(|x| x.as_array())
                .unwrap()
                .is_empty()
            {
                break;
            }
            assert!(Instant::now() < deadline, "ring never started: {}", t.body);
            std::thread::sleep(Duration::from_millis(25));
        }
        for i in 0..5 {
            assert!(get(&addr, &format!("/query?src={i}")).ok());
        }
        // Wait until the frames have accumulated the served requests.
        let v = loop {
            let t = get(&addr, "/debug/timeseries");
            assert!(t.ok(), "{} {}", t.status, t.body);
            let v = serde_json::parse(&t.body).unwrap();
            let served: u64 = v
                .get("frames")
                .and_then(|x| x.as_array())
                .unwrap()
                .iter()
                .map(|f| f.get("requests").and_then(|x| x.as_u64()).unwrap_or(0))
                .sum();
            if served >= 5 && v.get("frames").and_then(|x| x.as_array()).unwrap().len() >= 3 {
                break v;
            }
            assert!(
                Instant::now() < deadline,
                "frames never caught up: {}",
                t.body
            );
            std::thread::sleep(Duration::from_millis(25));
        };
        assert_eq!(v.get("interval_ms").and_then(|x| x.as_u64()), Some(50));
        assert!(v.get("capacity").and_then(|x| x.as_u64()).unwrap() >= 1);
        let frames = v.get("frames").and_then(|x| x.as_array()).unwrap();
        // Frames are seq-ordered oldest-first with non-negative deltas
        // and sane intervals; the served requests appear in some frame.
        let seqs: Vec<u64> = frames
            .iter()
            .map(|f| f.get("seq").and_then(|x| x.as_u64()).unwrap())
            .collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
        let mut requests = 0u64;
        for f in frames {
            assert!(f.get("interval_s").and_then(|x| x.as_f64()).unwrap() > 0.0);
            for key in ["requests", "errors", "dropped", "queue_depth", "in_flight"] {
                assert!(f.get(key).and_then(|x| x.as_u64()).is_some(), "{key}");
            }
            requests += f.get("requests").and_then(|x| x.as_u64()).unwrap();
        }
        assert!(requests >= 5, "served requests missing from frames");

        // ?n= caps the list from the newest end: the capped list's last
        // frame is at least as new as the uncapped list's last frame.
        let t = get(&addr, "/debug/timeseries?n=2");
        let tv = serde_json::parse(&t.body).unwrap();
        let capped = tv.get("frames").and_then(|x| x.as_array()).unwrap();
        assert!(!capped.is_empty() && capped.len() <= 2);
        let newest_capped = capped
            .last()
            .and_then(|f| f.get("seq"))
            .and_then(|x| x.as_u64())
            .unwrap();
        assert!(newest_capped >= *seqs.last().unwrap(), "{newest_capped}");

        // Malformed ?n=: 400 from both list endpoints, not a silent
        // fallback to the default.
        for path in ["/debug/timeseries?n=banana", "/debug/slow?n=-3"] {
            let r = get(&addr, path);
            assert_eq!(r.status, 400, "{path}: {}", r.body);
            let e = serde_json::parse(&r.body).unwrap();
            assert!(
                e.get("error")
                    .and_then(|x| x.as_str())
                    .unwrap()
                    .contains("n="),
                "{path}: {}",
                r.body
            );
        }
        // A wrong method on the new endpoints is 405, not 404.
        for path in ["/debug/health", "/debug/timeseries"] {
            let r = http::post_json(&addr, path, "", Duration::from_secs(30)).unwrap();
            assert_eq!(r.status, 405, "{path}: {}", r.body);
        }

        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }

    /// 503 sheds advertise a windowed-drain-rate `Retry-After`; the
    /// saturation setup mirrors the bypass test above.
    #[test]
    fn shed_responses_carry_retry_after() {
        let (driver, addr) = start(&[
            "--sessions",
            "1",
            "--threads",
            "1",
            "--queue-cap",
            "1",
            "--vertices",
            "2000",
            "--rollup-interval-ms",
            "50",
        ]);
        let deadline = Instant::now() + Duration::from_secs(60);
        'attempt: loop {
            let addr2 = addr.clone();
            let batch = std::thread::spawn(move || {
                let sources: Vec<String> = (0..512u32).map(|i| i.to_string()).collect();
                let body = format!("{{\"sources\":[{}]}}", sources.join(","));
                http::post_json(&addr2, "/query", &body, Duration::from_secs(60)).unwrap()
            });
            std::thread::sleep(Duration::from_millis(20));
            let addr3 = addr.clone();
            let filler = std::thread::spawn(move || {
                http::get(&addr3, "/query?src=0", Duration::from_secs(60)).unwrap()
            });
            let mut saturated = false;
            while Instant::now() < deadline {
                let m = get(&addr, "/metrics").body;
                if series_value(&m, "fastbfs_queue_depth") >= 1 {
                    saturated = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            if saturated {
                let probe = get(&addr, "/query?src=1");
                if probe.status == 503 {
                    let retry: u64 = probe
                        .header("retry-after")
                        .unwrap_or_else(|| panic!("no Retry-After: {:?}", probe.headers))
                        .parse()
                        .expect("Retry-After is integer seconds");
                    assert!((1..=60).contains(&retry), "retry {retry}");
                    assert!(batch.join().unwrap().ok());
                    let f = filler.join().unwrap();
                    assert!(f.ok() || f.status == 503, "{} {}", f.status, f.body);
                    break 'attempt;
                }
            }
            assert!(batch.join().unwrap().ok());
            let f = filler.join().unwrap();
            assert!(f.ok() || f.status == 503, "{} {}", f.status, f.body);
            assert!(
                Instant::now() < deadline,
                "queue never stayed saturated long enough to probe"
            );
        }
        assert!(get(&addr, "/quitquitquit").body.ends_with("bye\n"));
        driver.join().unwrap().unwrap();
    }
}
