//! Minimal HTTP/1.1 plumbing shared by `fastbfs serve` (server side) and
//! `fastbfs loadgen` (client side).
//!
//! Deliberately tiny: plain `std::net` sockets, one request per
//! connection, `Connection: close` on every response, no async runtime,
//! no keep-alive, no chunked encoding. The query server's unit of work is
//! a BFS traversal — connection setup is noise next to it — and the load
//! generator *wants* fresh connections so a stalled request never blocks
//! the next scheduled arrival.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Request head size cap (status line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Request body size cap (batched-query POST bodies).
const MAX_BODY: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path with the query string stripped.
    pub path: String,
    /// Query parameters in order of appearance, raw (no percent-decoding:
    /// every parameter this server defines is numeric).
    pub params: Vec<(String, String)>,
    /// Headers in order of appearance, names lowercased, values trimmed
    /// (header names are case-insensitive per RFC 9110).
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First value of header `name` (matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Transport-level failure (reset, timeout, empty read): nothing to
    /// respond to — the caller just drops the connection.
    Io,
    /// The bytes arrived but are not a well-formed request: the caller
    /// should answer 400 with this message.
    Bad(&'static str),
}

/// Reads and parses one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut buf = [0u8; 4096];
    let mut data: Vec<u8> = Vec::new();
    let head_end = loop {
        if let Some(pos) = find_head_end(&data) {
            break pos;
        }
        if data.len() > MAX_HEAD {
            return Err(RequestError::Bad("request head too large"));
        }
        let n = stream.read(&mut buf).map_err(|_| RequestError::Io)?;
        if n == 0 {
            if data.is_empty() {
                return Err(RequestError::Io);
            }
            return Err(RequestError::Bad("truncated request head"));
        }
        data.extend_from_slice(&buf[..n]);
    };
    let head = std::str::from_utf8(&data[..head_end])
        .map_err(|_| RequestError::Bad("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(RequestError::Bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(RequestError::Bad("missing method"))?
        .to_string();
    let target = parts.next().ok_or(RequestError::Bad("missing path"))?;
    if parts.next().is_none() {
        return Err(RequestError::Bad("missing HTTP version"));
    }

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Bad("bad Content-Length"))?;
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    if content_length > MAX_BODY {
        return Err(RequestError::Bad("request body too large"));
    }

    let mut body = data[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(|_| RequestError::Io)?;
        if n == 0 {
            return Err(RequestError::Bad("truncated request body"));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);

    let (path, params) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    Ok(Request {
        method,
        path,
        params,
        headers,
        body,
    })
}

fn find_head_end(data: &[u8]) -> Option<usize> {
    data.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

/// Writes one complete response and flushes. Errors are swallowed: the
/// peer hanging up mid-response is its problem, not the server's.
pub fn write_response(stream: &mut TcpStream, status: &str, ctype: &str, body: &[u8]) {
    write_response_with_headers(stream, status, ctype, &[], body);
}

/// [`write_response`] with extra response headers (e.g. `Retry-After` on
/// shed responses). Header names and values must already be valid header
/// text; this layer does no escaping.
pub fn write_response_with_headers(
    stream: &mut TcpStream,
    status: &str,
    ctype: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) {
    let extra: String = extra.iter().map(|(k, v)| format!("{k}: {v}\r\n")).collect();
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// JSON response.
pub fn write_json(stream: &mut TcpStream, status: &str, body: &str) {
    write_response(stream, status, "application/json", body.as_bytes());
}

/// JSON error body `{"error": "..."}` with the given status.
pub fn write_json_error(stream: &mut TcpStream, status: &str, message: &str) {
    write_json_error_with_headers(stream, status, message, &[]);
}

/// [`write_json_error`] with extra response headers: the 503 shed path
/// attaches `Retry-After` computed from the windowed drain rate.
pub fn write_json_error_with_headers(
    stream: &mut TcpStream,
    status: &str,
    message: &str,
    extra: &[(&str, &str)],
) {
    let escaped = message
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    write_response_with_headers(
        stream,
        status,
        "application/json",
        extra,
        format!("{{\"error\":\"{escaped}\"}}").as_bytes(),
    );
}

/// A client-side response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    /// Response headers in order of appearance, names lowercased. Only
    /// the tests read headers today (`Retry-After` assertions); the
    /// production clients key off status and body.
    #[cfg_attr(not(test), allow(dead_code))]
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    pub fn ok(&self) -> bool {
        self.status == 200
    }

    /// First value of response header `name` (case-insensitive).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Strips the scheme and any trailing slash from a base URL, leaving
/// `host:port` for `TcpStream::connect`.
pub fn host_of(url: &str) -> Result<String, String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    if rest.starts_with("https://") || url.starts_with("https://") {
        return Err("https is not supported; use http://host:port".into());
    }
    let host = rest.trim_end_matches('/');
    if host.is_empty() {
        return Err(format!("no host in URL {url:?}"));
    }
    Ok(host.to_string())
}

/// One GET over a fresh connection; reads to EOF (`Connection: close`).
pub fn get(host: &str, path: &str, timeout: Duration) -> Result<Response, String> {
    request(host, "GET", path, &[], None, timeout)
}

/// [`get`] with extra request headers: `loadgen` stamps its `Trace-Id`
/// on every request, and the serve tests send per-request `Deadline-Ms`
/// budgets this way.
pub fn get_with_headers(
    host: &str,
    path: &str,
    headers: &[(&str, &str)],
    timeout: Duration,
) -> Result<Response, String> {
    request(host, "GET", path, headers, None, timeout)
}

/// One POST with a JSON body over a fresh connection. The production
/// path only GETs (loadgen); the batched-POST client is exercised by the
/// serve tests.
#[cfg_attr(not(test), allow(dead_code))]
pub fn post_json(
    host: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<Response, String> {
    request(host, "POST", path, &[], Some(body), timeout)
}

fn request(
    host: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
    timeout: Duration,
) -> Result<Response, String> {
    let mut stream = TcpStream::connect(host).map_err(|e| format!("connect {host}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    let body = body.unwrap_or("");
    let extra: String = headers
        .iter()
        .map(|(k, v)| format!("{k}: {v}\r\n"))
        .collect();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send {path}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read {path}: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response to {path}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((raw.clone(), String::new()));
    let headers = head
        .split("\r\n")
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_query_strings_and_bodies() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/query");
            assert_eq!(req.param("src"), Some("17"));
            assert_eq!(req.param("dst"), Some("4"));
            assert_eq!(req.param("missing"), None);
            // Header names match case-insensitively; values are trimmed.
            assert_eq!(req.header("content-length"), Some("17"));
            assert_eq!(req.header("HOST"), req.header("host"));
            assert!(req.header("host").is_some());
            assert_eq!(req.header("deadline-ms"), None);
            assert_eq!(req.body, b"{\"sources\":[1,2]}");
            write_json(&mut s, "200 OK", "{\"ok\":true}");
        });
        let resp = post_json(
            &addr.to_string(),
            "/query?src=17&dst=4",
            "{\"sources\":[1,2]}",
            Duration::from_secs(2),
        )
        .unwrap();
        server.join().unwrap();
        assert!(resp.ok());
        assert_eq!(resp.body, "{\"ok\":true}");
    }

    #[test]
    fn error_bodies_escape_quotes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = read_request(&mut s);
            write_json_error(&mut s, "400 Bad Request", "bad \"src\" value");
        });
        let resp = get(&addr.to_string(), "/query", Duration::from_secs(2)).unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(resp.body, "{\"error\":\"bad \\\"src\\\" value\"}");
    }

    #[test]
    fn client_extra_headers_reach_the_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.header("deadline-ms"), Some("25"));
            write_json(&mut s, "200 OK", "{}");
        });
        let resp = get_with_headers(
            &addr.to_string(),
            "/query?src=1",
            &[("Deadline-Ms", "25")],
            Duration::from_secs(2),
        )
        .unwrap();
        server.join().unwrap();
        assert!(resp.ok());
    }

    #[test]
    fn extra_response_headers_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = read_request(&mut s);
            write_json_error_with_headers(
                &mut s,
                "503 Service Unavailable",
                "shed",
                &[("Retry-After", "3")],
            );
        });
        let resp = get(&addr.to_string(), "/query", Duration::from_secs(2)).unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("3"));
        assert_eq!(resp.header("RETRY-AFTER"), Some("3"));
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.header("absent"), None);
        assert_eq!(resp.body, "{\"error\":\"shed\"}");
    }

    #[test]
    fn host_of_strips_scheme_and_slash() {
        assert_eq!(host_of("http://127.0.0.1:9464/").unwrap(), "127.0.0.1:9464");
        assert_eq!(host_of("localhost:80").unwrap(), "localhost:80");
        assert!(host_of("https://x").is_err());
        assert!(host_of("http://").is_err());
    }
}
