//! `fastbfs monitor`: a live terminal view over a running query server.
//!
//! Polls `GET /debug/health` (the windowed SLO verdict, DESIGN.md §16)
//! and `GET /metrics` (for the per-session busy/served series the health
//! doc does not carry) and renders one screen per interval: QPS, windowed
//! p50/p99, error/drop/coalesce rates, the direction mix, queue levels,
//! per-session occupancy, per-SLO verdicts, and the slowest-trace
//! exemplars to pull through `/debug/trace/<id>`.
//!
//! `--once` renders a single frame and exits; with `--format json` that
//! frame is a machine-readable envelope (the health document verbatim
//! under `"health"`, plus the scraped session rows), which is what the
//! check.sh smoke and other scripts consume. The text mode clears the
//! screen between frames only when looping, so `--once` output composes
//! with shell pipelines.
//!
//! A breaching verdict (`/debug/health` answering 503) is *data*, not a
//! transport failure: the monitor keeps rendering it. Only an unreachable
//! server is an error.

use std::time::Duration;

use serde::Value;

use crate::http;
use crate::opts::Opts;

/// Scrape budget per endpoint; diagnostic reads bypass the admission
/// queue, so a healthy server answers well inside this.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// One session's scraped occupancy row.
struct SessionRow {
    session: u64,
    busy: bool,
    served: u64,
}

/// `fastbfs monitor`
pub fn monitor(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = args.iter().take_while(|a| !a.starts_with('-')).collect();
    if positional.len() > 1 {
        return Err("monitor takes at most one URL (try --help)".into());
    }
    let url = positional
        .first()
        .map(|s| s.as_str())
        .unwrap_or("http://127.0.0.1:9464")
        .to_string();
    let o = Opts::parse(&args[positional.len()..], &["once"])?;
    let interval_ms: u64 = o.num("interval-ms", 1000u64)?.max(100);
    let once = o.has("once");
    let format = o.get("format").unwrap_or("text").to_string();
    if format != "text" && format != "json" {
        return Err(format!("unknown --format {format:?} (text|json)"));
    }

    let host = http::host_of(&url)?;
    let mut frame = 0u64;
    loop {
        let health = http::get(&host, "/debug/health", SCRAPE_TIMEOUT)
            .map_err(|e| format!("{e} (is `fastbfs serve` running at {url}?)"))?;
        // 503 = breaching: still a well-formed verdict. Anything else
        // non-200 means the server cannot produce one.
        if health.status != 200 && health.status != 503 {
            return Err(format!(
                "GET /debug/health answered {}: {}",
                health.status, health.body
            ));
        }
        let doc = serde_json::parse(&health.body)
            .map_err(|e| format!("/debug/health is not JSON ({e}): {}", health.body))?;
        let sessions = http::get(&host, "/metrics", SCRAPE_TIMEOUT)
            .ok()
            .map(|m| session_rows(&m.body))
            .unwrap_or_default();

        if format == "json" {
            println!("{}", render_json(&health.body, health.status, &sessions));
        } else {
            if !once && frame > 0 {
                // ANSI clear + home keeps the live view in place.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render_text(&url, &doc, health.status, &sessions));
        }
        frame += 1;
        if once {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// Parses the per-session series out of a Prometheus exposition body.
fn session_rows(metrics: &str) -> Vec<SessionRow> {
    let busy = labeled_series(metrics, "fastbfs_session_busy");
    let served = labeled_series(metrics, "fastbfs_session_requests_total");
    busy.into_iter()
        .map(|(session, b)| {
            let s = served
                .iter()
                .find(|(id, _)| *id == session)
                .map(|(_, v)| *v as u64)
                .unwrap_or(0);
            SessionRow {
                session,
                busy: b >= 1.0,
                served: s,
            }
        })
        .collect()
}

/// All `name{session="N"} value` samples of one labeled series, in
/// session order.
fn labeled_series(metrics: &str, name: &str) -> Vec<(u64, f64)> {
    let prefix = format!("{name}{{session=\"");
    let mut rows: Vec<(u64, f64)> = metrics
        .lines()
        .filter_map(|l| {
            let rest = l.strip_prefix(&prefix)?;
            let (label, tail) = rest.split_once("\"}")?;
            let session: u64 = label.parse().ok()?;
            let value: f64 = tail.trim().parse().ok()?;
            Some((session, value))
        })
        .collect();
    rows.sort_by_key(|&(s, _)| s);
    rows
}

/// The `--format json` envelope: the health document verbatim plus the
/// HTTP status it arrived with and the scraped session rows.
fn render_json(health_body: &str, status: u16, sessions: &[SessionRow]) -> String {
    let mut out = String::with_capacity(health_body.len() + 128);
    out.push_str("{\"http_status\":");
    out.push_str(&status.to_string());
    out.push_str(",\"health\":");
    out.push_str(health_body);
    out.push_str(",\"sessions\":[");
    for (i, r) in sessions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"session\":{},\"busy\":{},\"served\":{}}}",
            r.session, r.busy, r.served
        ));
    }
    out.push_str("]}");
    out
}

fn f(v: Option<&Value>) -> f64 {
    v.and_then(|x| x.as_f64()).unwrap_or(0.0)
}

fn u(v: Option<&Value>) -> u64 {
    v.and_then(|x| x.as_u64()).unwrap_or(0)
}

fn s(v: Option<&Value>) -> &str {
    v.and_then(|x| x.as_str()).unwrap_or("?")
}

/// One window's table row.
fn window_row(out: &mut String, label: &str, w: Option<&Value>) {
    let Some(w) = w else {
        return;
    };
    let (td, bu) = (u(w.get("top_down_steps")), u(w.get("bottom_up_steps")));
    out.push_str(&format!(
        "{label:<6} {:>9.1} {:>9.3} {:>9.3} {:>7.3} {:>7.3} {:>7.3} {:>6}/{}\n",
        f(w.get("qps")),
        f(w.get("p50_ms")),
        f(w.get("p99_ms")),
        f(w.get("error_rate")),
        f(w.get("drop_rate")),
        f(w.get("coalesce_rate")),
        td,
        bu,
    ));
}

/// The human-readable frame.
fn render_text(url: &str, doc: &Value, status: u16, sessions: &[SessionRow]) -> String {
    let mut out = String::new();
    let state = s(doc.get("state"));
    out.push_str(&format!(
        "fastbfs monitor — {url}  up {:.1}s  state {}{}  queue {} (+{} in flight){}\n",
        f(doc.get("uptime_s")),
        state.to_uppercase(),
        if status == 503 { " [HTTP 503]" } else { "" },
        u(doc.get("queue_depth")),
        u(doc.get("in_flight")),
        if doc.get("queue_wedged").and_then(|x| x.as_bool()) == Some(true) {
            "  QUEUE WEDGED"
        } else {
            ""
        },
    ));
    out.push_str("window    qps    p50_ms    p99_ms    err%   drop%   coal%  td/bu steps\n");
    window_row(&mut out, "fast", doc.get("fast"));
    window_row(&mut out, "slow", doc.get("slow"));
    if let Some(slos) = doc.get("slos").and_then(|x| x.as_array()) {
        if slos.is_empty() {
            out.push_str("slos: none configured\n");
        } else {
            out.push_str("slos:");
            for slo in slos {
                out.push_str(&format!(
                    "  {} {} (fast {:.3} / slow {:.3}, limit {:.3})",
                    s(slo.get("name")),
                    s(slo.get("state")),
                    f(slo.get("fast")),
                    f(slo.get("slow")),
                    f(slo.get("threshold")),
                ));
            }
            out.push('\n');
        }
    }
    if !sessions.is_empty() {
        out.push_str("sessions:");
        for r in sessions {
            out.push_str(&format!(
                "  {}:{} served={}",
                r.session,
                if r.busy { "busy" } else { "idle" },
                r.served
            ));
        }
        out.push('\n');
    }
    if let Some(ex) = doc.get("exemplars").and_then(|x| x.as_array()) {
        if !ex.is_empty() {
            out.push_str("slowest traces:");
            for e in ex.iter().take(3) {
                out.push_str(&format!(
                    "  {} ({:.3}ms)",
                    s(e.get("trace_id")),
                    u(e.get("total_ns")) as f64 / 1e6,
                ));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: &str = "\
# HELP fastbfs_session_busy 1 while busy
fastbfs_session_busy{session=\"0\"} 1
fastbfs_session_busy{session=\"1\"} 0
fastbfs_session_requests_total{session=\"0\"} 42
fastbfs_session_requests_total{session=\"1\"} 17
fastbfs_queue_depth 3
";

    #[test]
    fn session_rows_parse_from_exposition_text() {
        let rows = session_rows(METRICS);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].session, 0);
        assert!(rows[0].busy);
        assert_eq!(rows[0].served, 42);
        assert_eq!(rows[1].session, 1);
        assert!(!rows[1].busy);
        assert_eq!(rows[1].served, 17);
        // A body without the series yields no rows, not garbage.
        assert!(session_rows("fastbfs_queue_depth 3\n").is_empty());
    }

    #[test]
    fn json_envelope_embeds_health_verbatim_and_parses() {
        let health = "{\"state\":\"ok\",\"queue_depth\":0}";
        let rows = session_rows(METRICS);
        let out = render_json(health, 200, &rows);
        let v = serde_json::parse(&out).unwrap();
        assert_eq!(v.get("http_status").and_then(|x| x.as_u64()), Some(200));
        assert_eq!(
            v.get("health")
                .and_then(|h| h.get("state"))
                .and_then(|x| x.as_str()),
            Some("ok")
        );
        let sessions = v.get("sessions").and_then(|x| x.as_array()).unwrap();
        assert_eq!(sessions.len(), 2);
        assert_eq!(
            sessions[0].get("busy").and_then(|x| x.as_bool()),
            Some(true)
        );
        assert_eq!(sessions[1].get("served").and_then(|x| x.as_u64()), Some(17));
    }

    #[test]
    fn text_frame_renders_verdict_windows_and_exemplars() {
        let doc = serde_json::parse(
            "{\"state\":\"breaching\",\"queue_wedged\":true,\"uptime_s\":12.5,\
             \"queue_depth\":7,\"in_flight\":2,\
             \"fast\":{\"qps\":100.0,\"p50_ms\":1.0,\"p99_ms\":9.0,\"error_rate\":0.0,\
                       \"drop_rate\":0.5,\"coalesce_rate\":0.25,\"top_down_steps\":30,\
                       \"bottom_up_steps\":10},\
             \"slow\":{\"qps\":80.0,\"p50_ms\":1.1,\"p99_ms\":7.0,\"error_rate\":0.0,\
                       \"drop_rate\":0.1,\"coalesce_rate\":0.2,\"top_down_steps\":300,\
                       \"bottom_up_steps\":90},\
             \"slos\":[{\"name\":\"drop_rate\",\"threshold\":0.2,\"fast\":0.5,\
                        \"slow\":0.1,\"state\":\"breaching\"}],\
             \"exemplars\":[{\"trace_id\":\"lg2a-17\",\"total_ns\":12300000}]}",
        )
        .unwrap();
        let rows = session_rows(METRICS);
        let text = render_text("http://h:1", &doc, 503, &rows);
        assert!(text.contains("state BREACHING"), "{text}");
        assert!(text.contains("[HTTP 503]"), "{text}");
        assert!(text.contains("QUEUE WEDGED"), "{text}");
        assert!(text.contains("fast"), "{text}");
        assert!(text.contains("slow"), "{text}");
        assert!(text.contains("drop_rate breaching"), "{text}");
        assert!(text.contains("0:busy served=42"), "{text}");
        assert!(text.contains("lg2a-17 (12.300ms)"), "{text}");
        // A minimal ok doc renders without panicking on absent fields.
        let bare = serde_json::parse("{\"state\":\"ok\"}").unwrap();
        let text = render_text("http://h:1", &bare, 200, &[]);
        assert!(text.contains("state OK"), "{text}");
    }
}
