//! Tiny flag parser shared by the subcommands (no CLI crate dependency).

use std::collections::HashMap;

/// Parsed `--key value` flags plus boolean switches.
#[derive(Debug, Default)]
pub struct Opts {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Opts {
    /// Parses `args`; `bool_flags` lists switches that take no value.
    pub fn parse(args: &[String], bool_flags: &[&str]) -> Result<Self, String> {
        let mut o = Opts::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .or_else(|| a.strip_prefix('-'))
                .ok_or_else(|| format!("expected a flag, got {a:?}"))?;
            if bool_flags.contains(&key) {
                o.switches.push(key.to_string());
            } else {
                let v = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                o.values.insert(key.to_string(), v.clone());
            }
        }
        Ok(o)
    }

    /// String value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Parsed numeric value with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }

    /// Required numeric value.
    pub fn require_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.require(key)?
            .parse()
            .map_err(|_| format!("--{key} expects a number"))
    }

    /// Boolean switch presence.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str], b: &[&str]) -> Result<Opts, String> {
        Opts::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>(), b)
    }

    #[test]
    fn values_and_switches() {
        let o = parse(
            &["--scale", "18", "--validate", "-o", "x.bin"],
            &["validate"],
        )
        .unwrap();
        assert_eq!(o.get("scale"), Some("18"));
        assert_eq!(o.get("o"), Some("x.bin"));
        assert!(o.has("validate"));
        assert!(!o.has("other"));
    }

    #[test]
    fn numeric_parsing_with_defaults() {
        let o = parse(&["--scale", "18"], &[]).unwrap();
        assert_eq!(o.num::<u32>("scale", 0).unwrap(), 18);
        assert_eq!(o.num::<u32>("missing", 7).unwrap(), 7);
        assert!(o.require_num::<u32>("missing").is_err());
    }

    #[test]
    fn error_cases() {
        assert!(parse(&["notaflag"], &[]).is_err());
        assert!(parse(&["--key"], &[]).is_err());
        let o = parse(&["--n", "abc"], &[]).unwrap();
        assert!(o.num::<u32>("n", 0).is_err());
    }
}
