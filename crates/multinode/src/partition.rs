//! 1-D vertex partitioning and shard extraction.
//!
//! The paper's socket rule (§III-C(1)) generalized to cluster nodes: vertex
//! `v` lives on node `v >> log2(|V_N|)` with `|V_N|` the per-node vertex
//! count rounded up to a power of two. Each node stores the adjacency lists
//! of its own vertices (a *shard*) — the layout of Yoo et al.'s BlueGene/L
//! BFS and the Graph500 reference code's 1-D decomposition.

use bfs_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// The global partition: node count and the power-of-two stripe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Number of nodes.
    pub nodes: usize,
    /// Vertices per node (power of two).
    pub stripe: usize,
    /// Total vertices.
    pub num_vertices: usize,
}

impl Partition {
    /// Partition `num_vertices` across `nodes`.
    pub fn new(num_vertices: usize, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self {
            nodes,
            stripe: bfs_platform::topology::vertices_per_socket(num_vertices, nodes),
            num_vertices,
        }
    }

    /// Owning node of vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        ((v as usize) / self.stripe).min(self.nodes - 1)
    }

    /// Global vertex range owned by `node`.
    pub fn range(&self, node: usize) -> std::ops::Range<usize> {
        assert!(node < self.nodes);
        let lo = (node * self.stripe).min(self.num_vertices);
        let hi = ((node + 1) * self.stripe).min(self.num_vertices);
        lo..hi
    }

    /// Local index of a vertex on its owner.
    #[inline]
    pub fn local(&self, v: VertexId) -> usize {
        (v as usize) - self.range(self.owner(v)).start
    }
}

/// One node's slice of the graph: the adjacency lists of its vertex range,
/// with *global* neighbor ids (messages carry global ids).
#[derive(Clone, Debug)]
pub struct Shard {
    /// Owning node.
    pub node: usize,
    /// Global id of the first local vertex.
    pub base: VertexId,
    /// Local CSR offsets (`local_count + 1`).
    offsets: Vec<u64>,
    /// Global neighbor ids.
    neighbors: Vec<VertexId>,
}

impl Shard {
    /// Number of local vertices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the shard owns no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Local out-degree sum.
    pub fn num_edges(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Neighbors (global ids) of global vertex `v` (must be local).
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let l = (v - self.base) as usize;
        &self.neighbors[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }

    /// True if `v` is owned by this shard.
    pub fn owns(&self, v: VertexId) -> bool {
        let l = v.wrapping_sub(self.base) as usize;
        l < self.len()
    }
}

/// Splits `graph` into per-node shards under `partition`.
pub fn extract_shards(graph: &CsrGraph, partition: &Partition) -> Vec<Shard> {
    assert_eq!(graph.num_vertices(), partition.num_vertices);
    (0..partition.nodes)
        .map(|node| {
            let range = partition.range(node);
            let base = range.start as VertexId;
            let mut offsets = Vec::with_capacity(range.len() + 1);
            let mut neighbors = Vec::new();
            offsets.push(0u64);
            for v in range {
                neighbors.extend_from_slice(graph.neighbors(v as VertexId));
                offsets.push(neighbors.len() as u64);
            }
            Shard {
                node,
                base,
                offsets,
                neighbors,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfs_graph::gen::classic::path;
    use bfs_graph::gen::uniform::uniform_random;
    use bfs_graph::rng::rng_from_seed;

    #[test]
    fn partition_rule_matches_socket_rule() {
        let p = Partition::new(12, 2);
        assert_eq!(p.stripe, 8);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(7), 0);
        assert_eq!(p.owner(8), 1);
        assert_eq!(p.range(0), 0..8);
        assert_eq!(p.range(1), 8..12);
        assert_eq!(p.local(9), 1);
    }

    #[test]
    fn owner_clamps_to_last_node() {
        let p = Partition::new(5, 4);
        assert!(p.owner(4) < 4);
        let mut covered = 0;
        for node in 0..4 {
            covered += p.range(node).len();
        }
        assert_eq!(covered, 5);
    }

    #[test]
    fn shards_cover_the_graph_exactly() {
        let g = uniform_random(1000, 5, &mut rng_from_seed(1));
        let p = Partition::new(1000, 3);
        let shards = extract_shards(&g, &p);
        assert_eq!(shards.len(), 3);
        let total_vertices: usize = shards.iter().map(|s| s.len()).sum();
        let total_edges: u64 = shards.iter().map(|s| s.num_edges()).sum();
        assert_eq!(total_vertices, 1000);
        assert_eq!(total_edges, g.num_edges());
        // Spot-check adjacency fidelity.
        for v in [0u32, 499, 999] {
            let shard = &shards[p.owner(v)];
            assert!(shard.owns(v));
            assert_eq!(shard.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn single_node_shard_is_whole_graph() {
        let g = path(9);
        let p = Partition::new(9, 1);
        let shards = extract_shards(&g, &p);
        assert_eq!(shards[0].len(), 9);
        assert_eq!(shards[0].num_edges(), g.num_edges());
    }

    #[test]
    fn owns_rejects_foreign_vertices() {
        let g = path(16);
        let p = Partition::new(16, 2);
        let shards = extract_shards(&g, &p);
        assert!(shards[0].owns(7));
        assert!(!shards[0].owns(8));
        assert!(shards[1].owns(8));
        assert!(!shards[1].owns(7));
    }
}
