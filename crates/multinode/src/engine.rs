//! The distributed BFS driver: supersteps over shards.
//!
//! Per superstep, every node (a) expands its share of the current frontier
//! against its local shard, staging `(parent, vertex)` messages toward the
//! neighbors' owners, and (b) after the exchange, applies the single-node
//! claim protocol — VIS filter then DP claim — to its inbox, producing the
//! next local frontier. This is exactly the structure in which the paper's
//! single-node engine becomes a "building block": step (b) *is* Phase II of
//! the single-node algorithm, with the network taking the place of the
//! cross-socket bins.

use bfs_core::dp::INF_DEPTH;
use bfs_graph::{CsrGraph, VertexId};
use bfs_trace::{NoopSink, RunEvent, SuperstepEvent, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};

use crate::comm::{Exchange, LinkTraffic, Message};
use crate::partition::{extract_shards, Partition, Shard};

/// Distributed-run options.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DistOptions {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node already-sent dedup filter (the distributed VIS analogue).
    pub dedup: bool,
}

impl Default for DistOptions {
    fn default() -> Self {
        Self {
            nodes: 4,
            dedup: true,
        }
    }
}

/// Output of a distributed traversal.
#[derive(Clone, Debug)]
pub struct DistBfsOutput {
    /// Global depth per vertex.
    pub depths: Vec<u32>,
    /// Global parent per vertex.
    pub parents: Vec<VertexId>,
    /// Supersteps executed (= BFS depth).
    pub supersteps: u32,
    /// Link traffic accounting.
    pub traffic: LinkTraffic,
    /// Messages delivered per superstep.
    pub messages_per_step: Vec<u64>,
    /// Vertices assigned a depth.
    pub visited_vertices: u64,
    /// Traversed edges (sum of degrees over visited vertices).
    pub traversed_edges: u64,
}

impl DistBfsOutput {
    /// Remote bytes per traversed edge — the cluster-efficiency metric the
    /// paper's single-node argument is about.
    pub fn remote_bytes_per_edge(&self) -> f64 {
        self.traffic.total_remote() as f64 / self.traversed_edges.max(1) as f64
    }
}

/// The distributed engine: a partitioned graph plus options.
pub struct DistBfs {
    partition: Partition,
    shards: Vec<Shard>,
    options: DistOptions,
    degrees: Vec<u32>,
}

impl DistBfs {
    /// Partitions `graph` across `options.nodes` nodes.
    pub fn new(graph: &CsrGraph, options: DistOptions) -> Self {
        let partition = Partition::new(graph.num_vertices(), options.nodes);
        let shards = extract_shards(graph, &partition);
        let degrees = (0..graph.num_vertices() as VertexId)
            .map(|v| graph.degree(v))
            .collect();
        Self {
            partition,
            shards,
            options,
            degrees,
        }
    }

    /// The partition in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Runs a distributed traversal from `source`.
    pub fn run(&self, source: VertexId) -> DistBfsOutput {
        self.run_traced(source, &NoopSink)
    }

    /// [`run`](Self::run) emitting one [`RunEvent`] plus one
    /// [`SuperstepEvent`] per message-delivering superstep into `sink`.
    pub fn run_traced(&self, source: VertexId, sink: &dyn TraceSink) -> DistBfsOutput {
        let n = self.partition.num_vertices;
        assert!((source as usize) < n, "source out of range");
        let nodes = self.options.nodes;
        let tracing = sink.enabled();
        if tracing {
            sink.record(&TraceEvent::Run(RunEvent {
                engine: "multinode".to_string(),
                vertices: n as u64,
                edges: self.degrees.iter().map(|&d| d as u64).sum(),
                source,
                sockets: nodes,
                lanes_per_socket: 1,
                threads: nodes,
                n_vis: None,
                n_pbv: None,
                encoding: None,
                scheduling: None,
                vis: None,
                nodes: Some(nodes),
            }));
        }
        let mut depths = vec![INF_DEPTH; n];
        let mut parents = vec![VertexId::MAX; n];
        depths[source as usize] = 0;
        parents[source as usize] = source;
        // Per-node local frontiers (global ids, all owned by that node).
        let mut frontiers: Vec<Vec<VertexId>> = vec![Vec::new(); nodes];
        frontiers[self.partition.owner(source)].push(source);
        let mut exchange = Exchange::new(self.partition, self.options.dedup);
        let mut messages_per_step = Vec::new();
        let mut depth = 0u32;
        let mut supersteps = 0u32;

        loop {
            assert!(depth <= n as u32 + 1, "distributed BFS failed to terminate");
            // (a) Local expansion: stage messages toward neighbors' owners.
            #[allow(clippy::needless_range_loop)] // node indexes shards and frontiers
            for node in 0..nodes {
                let shard = &self.shards[node];
                for &u in &frontiers[node] {
                    for &v in shard.neighbors(u) {
                        // Sender-side filter: a node only knows the claim
                        // state of its OWN vertex range (remote state is
                        // what the exchange exists for). `depths` is one
                        // array here for convenience, but reads are
                        // restricted to the owner to stay faithful.
                        if self.partition.owner(v) == node && depths[v as usize] != INF_DEPTH {
                            continue;
                        }
                        exchange.send(
                            node,
                            Message {
                                parent: u,
                                vertex: v,
                            },
                        );
                    }
                }
            }
            // (b) Exchange + owner-side claims (the single-node Phase II).
            let inbox = exchange.deliver();
            let delivered: u64 = inbox.iter().map(|i| i.len() as u64).sum();
            let mut claimed = 0u64;
            for (node, msgs) in inbox.into_iter().enumerate() {
                let next = &mut frontiers[node];
                next.clear();
                for m in msgs {
                    debug_assert_eq!(self.partition.owner(m.vertex), node);
                    let d = &mut depths[m.vertex as usize];
                    if *d == INF_DEPTH {
                        *d = depth + 1;
                        parents[m.vertex as usize] = m.parent;
                        next.push(m.vertex);
                        claimed += 1;
                    }
                }
            }
            if delivered > 0 {
                messages_per_step.push(delivered);
                if tracing {
                    sink.record(&TraceEvent::Superstep(SuperstepEvent {
                        step: depth + 1,
                        messages: delivered,
                        frontier: claimed,
                    }));
                }
            }
            if claimed == 0 {
                break;
            }
            depth += 1;
            supersteps = depth;
        }

        let mut visited = 0u64;
        let mut traversed = 0u64;
        #[allow(clippy::needless_range_loop)] // v is a vertex id across arrays
        for v in 0..n {
            if depths[v] != INF_DEPTH {
                visited += 1;
                traversed += self.degrees[v] as u64;
            }
        }
        DistBfsOutput {
            depths,
            parents,
            supersteps,
            traffic: exchange.traffic().clone(),
            messages_per_step,
            visited_vertices: visited,
            traversed_edges: traversed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfs_core::serial::serial_bfs;
    use bfs_core::validate::validate_bfs_tree;
    use bfs_graph::gen::classic::{binary_tree, path, two_cliques};
    use bfs_graph::gen::rmat::{rmat, RmatConfig};
    use bfs_graph::gen::uniform::uniform_random;
    use bfs_graph::rng::rng_from_seed;

    fn check(g: &CsrGraph, src: u32, options: DistOptions) -> DistBfsOutput {
        let out = DistBfs::new(g, options).run(src);
        let reference = serial_bfs(g, src);
        assert_eq!(out.depths, reference.depths, "depths diverge ({options:?})");
        validate_bfs_tree(g, src, &out.depths, &out.parents).unwrap();
        assert_eq!(out.visited_vertices, reference.visited);
        assert_eq!(out.supersteps, reference.max_depth);
        out
    }

    #[test]
    fn matches_serial_on_classics() {
        for nodes in [1usize, 2, 3, 8] {
            for dedup in [false, true] {
                let opts = DistOptions { nodes, dedup };
                check(&path(40), 0, opts);
                check(&binary_tree(63), 0, opts);
                check(&two_cliques(9, 7), 0, opts);
            }
        }
    }

    #[test]
    fn matches_serial_on_random_and_rmat() {
        let g = uniform_random(3000, 6, &mut rng_from_seed(1));
        check(
            &g,
            0,
            DistOptions {
                nodes: 4,
                dedup: true,
            },
        );
        let g = rmat(&RmatConfig::paper(12, 8), &mut rng_from_seed(2));
        let src = bfs_graph::stats::nth_non_isolated(&g, 0).unwrap();
        check(
            &g,
            src,
            DistOptions {
                nodes: 4,
                dedup: true,
            },
        );
        check(
            &g,
            src,
            DistOptions {
                nodes: 4,
                dedup: false,
            },
        );
    }

    #[test]
    fn dedup_reduces_traffic_without_changing_results() {
        let g = uniform_random(2000, 16, &mut rng_from_seed(3));
        let with = check(
            &g,
            0,
            DistOptions {
                nodes: 4,
                dedup: true,
            },
        );
        let without = check(
            &g,
            0,
            DistOptions {
                nodes: 4,
                dedup: false,
            },
        );
        assert!(
            with.traffic.total_remote() < without.traffic.total_remote(),
            "dedup must cut remote bytes: {} vs {}",
            with.traffic.total_remote(),
            without.traffic.total_remote()
        );
    }

    #[test]
    fn single_node_run_has_zero_remote_traffic() {
        let g = uniform_random(500, 4, &mut rng_from_seed(4));
        let out = check(
            &g,
            0,
            DistOptions {
                nodes: 1,
                dedup: true,
            },
        );
        assert_eq!(out.traffic.total_remote(), 0);
    }

    #[test]
    fn more_nodes_mean_more_remote_bytes_per_edge() {
        // The paper's cluster argument: the same traversal pays more
        // interconnect traffic the more nodes it spans.
        let g = uniform_random(4000, 8, &mut rng_from_seed(5));
        let b2 = check(
            &g,
            0,
            DistOptions {
                nodes: 2,
                dedup: true,
            },
        )
        .remote_bytes_per_edge();
        let b8 = check(
            &g,
            0,
            DistOptions {
                nodes: 8,
                dedup: true,
            },
        )
        .remote_bytes_per_edge();
        assert!(
            b8 > b2,
            "8-node traffic/edge {b8} should exceed 2-node {b2}"
        );
    }

    #[test]
    fn traced_run_emits_run_and_superstep_events() {
        use bfs_trace::RingSink;
        let g = uniform_random(1000, 6, &mut rng_from_seed(6));
        let opts = DistOptions {
            nodes: 3,
            dedup: true,
        };
        let ring = RingSink::new(4096);
        let out = DistBfs::new(&g, opts).run_traced(0, &ring);
        let events = ring.into_events();
        let runs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Run(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].engine, "multinode");
        assert_eq!(runs[0].nodes, Some(3));
        assert_eq!(runs[0].vertices, 1000);
        let steps: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Superstep(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(steps.len(), out.messages_per_step.len());
        let mut claimed_total = 0u64;
        for (i, s) in steps.iter().enumerate() {
            assert_eq!(s.step, i as u32 + 1);
            assert_eq!(s.messages, out.messages_per_step[i]);
            assert!(s.frontier <= s.messages);
            claimed_total += s.frontier;
        }
        // Every visit past the source is claimed in exactly one superstep.
        assert_eq!(claimed_total, out.visited_vertices - 1);
        // Tracing must not perturb the traversal.
        assert_eq!(out.depths, DistBfs::new(&g, opts).run(0).depths);
    }

    #[test]
    fn message_counts_track_frontier_sizes() {
        let g = path(10);
        let out = check(
            &g,
            0,
            DistOptions {
                nodes: 2,
                dedup: false,
            },
        );
        // Every superstep that advanced the frontier delivered messages,
        // and a path's per-step message count is tiny (the claiming edge
        // plus at most a couple of rejected back-edges at the boundary).
        assert!(out.messages_per_step.len() as u32 >= out.supersteps);
        assert!(out.messages_per_step.iter().all(|&m| (1..=3).contains(&m)));
        // Total messages bounded by directed edges (no dedup, but local
        // filtering removes most back-edges).
        let total: u64 = out.messages_per_step.iter().sum();
        assert!(total <= g.num_edges());
    }
}
