//! The simulated interconnect: per-superstep all-to-all frontier exchange.
//!
//! At the end of each local expansion, every node has produced
//! `(parent, vertex)` messages destined for the vertices' owners. The
//! network delivers them between supersteps and accounts the bytes each
//! link carried — the quantity a real MPI implementation pays for, and the
//! reason the single-node efficiency the paper optimizes matters: the paper
//! argues one fast node replaces a 256-node cluster *because* cross-node
//! bandwidth is the scaling bottleneck.
//!
//! An optional **per-node dedup filter** (a local bitmap of already-sent
//! vertices, the standard Graph500 optimization) suppresses re-sends of
//! vertices this node already forwarded — the distributed analogue of the
//! paper's VIS filter.

use bfs_graph::VertexId;
use serde::{Deserialize, Serialize};

use crate::partition::Partition;

/// One frontier message: claim `vertex` with `parent`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    pub parent: VertexId,
    pub vertex: VertexId,
}

/// Bytes one message occupies on the wire (two 32-bit ids, as in the PBV
/// pair encoding).
pub const MESSAGE_BYTES: u64 = 8;

/// Per-link traffic accounting: `bytes[src][dst]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkTraffic {
    nodes: usize,
    bytes: Vec<u64>,
}

impl LinkTraffic {
    fn new(nodes: usize) -> Self {
        Self {
            nodes,
            bytes: vec![0; nodes * nodes],
        }
    }

    /// Bytes sent from `src` to `dst` so far.
    pub fn between(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.nodes + dst]
    }

    /// Total bytes over all links (excluding node-local "sends").
    pub fn total_remote(&self) -> u64 {
        let mut t = 0;
        for s in 0..self.nodes {
            for d in 0..self.nodes {
                if s != d {
                    t += self.between(s, d);
                }
            }
        }
        t
    }

    /// Maximum bytes any single node sent to remote peers (the bottleneck
    /// sender).
    pub fn max_node_egress(&self) -> u64 {
        (0..self.nodes)
            .map(|s| {
                (0..self.nodes)
                    .filter(|&d| d != s)
                    .map(|d| self.between(s, d))
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }
}

/// The all-to-all exchange fabric with per-node send buffers.
#[derive(Clone, Debug)]
pub struct Exchange {
    partition: Partition,
    /// `outbox[src][dst]` — messages staged this superstep.
    outbox: Vec<Vec<Vec<Message>>>,
    /// Per-node already-forwarded filter (dedup), one bit per global vertex.
    sent_filter: Option<Vec<Vec<u64>>>,
    traffic: LinkTraffic,
}

impl Exchange {
    /// New fabric; `dedup` enables the per-node already-sent filter.
    pub fn new(partition: Partition, dedup: bool) -> Self {
        let words = partition.num_vertices.div_ceil(64);
        Self {
            partition,
            outbox: vec![vec![Vec::new(); partition.nodes]; partition.nodes],
            sent_filter: dedup.then(|| vec![vec![0u64; words]; partition.nodes]),
            traffic: LinkTraffic::new(partition.nodes),
        }
    }

    /// Traffic accounted so far.
    pub fn traffic(&self) -> &LinkTraffic {
        &self.traffic
    }

    /// Stages a message from `src` toward `vertex`'s owner. Returns `false`
    /// if the dedup filter suppressed it.
    pub fn send(&mut self, src: usize, m: Message) -> bool {
        if let Some(filters) = &mut self.sent_filter {
            let f = &mut filters[src];
            let (w, b) = ((m.vertex / 64) as usize, m.vertex % 64);
            if f[w] & (1 << b) != 0 {
                return false;
            }
            f[w] |= 1 << b;
        }
        let dst = self.partition.owner(m.vertex);
        self.outbox[src][dst].push(m);
        true
    }

    /// Delivers all staged messages: returns `inbox[dst]` and accounts the
    /// link bytes. Node-local messages are delivered free of traffic.
    pub fn deliver(&mut self) -> Vec<Vec<Message>> {
        let nodes = self.partition.nodes;
        let mut inbox: Vec<Vec<Message>> = vec![Vec::new(); nodes];
        for src in 0..nodes {
            #[allow(clippy::needless_range_loop)] // dst indexes outbox and inbox
            for dst in 0..nodes {
                let staged = std::mem::take(&mut self.outbox[src][dst]);
                if !staged.is_empty() {
                    self.traffic.bytes[src * nodes + dst] += staged.len() as u64 * MESSAGE_BYTES;
                    inbox[dst].extend(staged);
                }
            }
        }
        inbox
    }

    /// Number of messages currently staged (all nodes).
    pub fn staged(&self) -> usize {
        self.outbox.iter().flatten().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(parent: u32, vertex: u32) -> Message {
        Message { parent, vertex }
    }

    #[test]
    fn routes_by_owner_and_accounts_bytes() {
        let p = Partition::new(16, 2); // stripe 8
        let mut x = Exchange::new(p, false);
        assert!(x.send(0, msg(1, 3))); // local to node 0
        assert!(x.send(0, msg(1, 9))); // remote to node 1
        assert!(x.send(1, msg(2, 9))); // local to node 1
        assert_eq!(x.staged(), 3);
        let inbox = x.deliver();
        assert_eq!(inbox[0], vec![msg(1, 3)]);
        assert_eq!(inbox[1], vec![msg(1, 9), msg(2, 9)]);
        assert_eq!(x.traffic().between(0, 1), MESSAGE_BYTES);
        assert_eq!(x.traffic().total_remote(), MESSAGE_BYTES);
        assert_eq!(x.staged(), 0);
    }

    #[test]
    fn dedup_suppresses_repeats_per_sender() {
        let p = Partition::new(16, 2);
        let mut x = Exchange::new(p, true);
        assert!(x.send(0, msg(1, 9)));
        assert!(
            !x.send(0, msg(2, 9)),
            "same vertex from same node suppressed"
        );
        assert!(x.send(1, msg(3, 9)), "different sender not suppressed");
        let inbox = x.deliver();
        assert_eq!(inbox[1].len(), 2);
    }

    #[test]
    fn no_dedup_forwards_everything() {
        let p = Partition::new(16, 2);
        let mut x = Exchange::new(p, false);
        assert!(x.send(0, msg(1, 9)));
        assert!(x.send(0, msg(2, 9)));
        assert_eq!(x.deliver()[1].len(), 2);
        assert_eq!(x.traffic().between(0, 1), 2 * MESSAGE_BYTES);
    }

    #[test]
    fn egress_bottleneck() {
        let p = Partition::new(32, 4); // stripe 8
        let mut x = Exchange::new(p, false);
        // node 0 sends 3 remote messages; node 1 sends 1.
        x.send(0, msg(0, 9));
        x.send(0, msg(0, 17));
        x.send(0, msg(0, 25));
        x.send(1, msg(0, 2));
        x.deliver();
        assert_eq!(x.traffic().max_node_egress(), 3 * MESSAGE_BYTES);
        assert_eq!(x.traffic().total_remote(), 4 * MESSAGE_BYTES);
    }

    #[test]
    fn deliver_on_empty_fabric() {
        let p = Partition::new(8, 2);
        let mut x = Exchange::new(p, true);
        let inbox = x.deliver();
        assert!(inbox.iter().all(|i| i.is_empty()));
        assert_eq!(x.traffic().total_remote(), 0);
    }
}
