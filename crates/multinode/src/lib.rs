//! Multi-node BFS on top of the single-node engine.
//!
//! The paper closes with: *"Our algorithm is useful as a building block for
//! efficient multi-node implementations, and allows these implementations
//! to ride the trend of increasing per-node compute and bandwidth
//! resources."* This crate realizes that building block as a simulated
//! cluster: the classic 1-D partitioned level-synchronous BFS (Yoo et al.
//! BlueGene/L, Graph500 reference MPI code) where each node runs a full
//! single-node traversal step over its vertex shard and exchanges frontier
//! messages at superstep boundaries.
//!
//! * [`partition`] — 1-D vertex partitioning with the same power-of-two
//!   stripe rule the paper uses for sockets (`|V_NS|` generalized to
//!   `|V_N|` per node), and shard extraction into per-node local CSRs.
//! * [`comm`] — the simulated interconnect: per-superstep all-to-all of
//!   (parent, vertex) messages with per-link byte accounting and optional
//!   message deduplication (the classic bandwidth optimization: a node
//!   forwards each remote vertex at most once per step).
//! * [`engine`] — the distributed driver: per-node frontiers, local VIS/DP
//!   shards, superstep loop, and Graph500-style validation hooks.
//!
//! Everything is deterministic and runs in-process; "nodes" are data, not
//! OS processes, so the crate measures *algorithmic* communication volume —
//! the quantity a real MPI implementation would pay for.

//! # Example
//!
//! ```
//! use bfs_multinode::{DistBfs, DistOptions};
//! use bfs_graph::gen::uniform::uniform_random;
//! use bfs_graph::rng::rng_from_seed;
//!
//! let graph = uniform_random(500, 4, &mut rng_from_seed(1));
//! let out = DistBfs::new(&graph, DistOptions { nodes: 4, dedup: true }).run(0);
//! assert!(out.traffic.total_remote() > 0);
//! assert_eq!(out.depths[0], 0);
//! ```

pub mod comm;
pub mod engine;
pub mod partition;

pub use engine::{DistBfs, DistBfsOutput, DistOptions};
pub use partition::{Partition, Shard};
