//! Windowed telemetry rollups: a preallocated ring of per-interval delta
//! frames over the cumulative registry, plus the burn-rate SLO engine.
//!
//! Every counter in [`crate::registry`] is cumulative-since-boot, which is
//! the right shape for attribution and bench gates but the wrong shape for
//! operational health: a server that degrades mid-run looks fine in
//! aggregate until long after the incident. This module turns successive
//! [`MetricsSnapshot`]s into *rates over recent windows*:
//!
//! * [`RollupRing`] — a fixed-capacity ring of [`RollupFrame`]s. Each
//!   frame stores the per-interval **delta** of every counter and every
//!   histogram bucket (fixed arrays, no heap). [`RollupRing::tick`] diffs
//!   the latest snapshot against the previous cumulative totals and writes
//!   the next slot in place — the warm path performs **zero allocations**
//!   (guarded by `tests/rollup_allocations.rs`).
//! * [`WindowStats`] — the sum of the last *k* frames. Because histogram
//!   *bucket* deltas are retained (not just count/sum), a window yields a
//!   true windowed p50/p99 via the same bucket walk the since-boot
//!   snapshot uses — not a since-boot percentile that averages the
//!   incident away.
//! * [`SloConfig`] / [`evaluate`] — multi-window burn-rate verdicts: a
//!   threshold exceeded over the *fast* window is `breaching` (page now),
//!   exceeded only over the *slow* window is `degraded` (budget still
//!   burnt; don't flap back to `ok` the instant the fast window clears).
//!
//! The ring is sized by the serve layer to cover the slow window; see
//! DESIGN.md §16 for the sizing and vocabulary rationale.

use crate::registry::{bucket_upper_bound, Counter, Hist, HIST_BUCKETS, NUM_COUNTERS, NUM_HISTS};
use crate::snapshot::MetricsSnapshot;

/// Hard cap on ring capacity; keeps a misconfigured interval/window pair
/// from preallocating unbounded memory (a frame is ~2 KiB).
pub const MAX_RING_CAPACITY: usize = 4096;

/// Cumulative totals as fixed arrays — the diffing baseline for `tick`.
#[derive(Clone)]
struct CumulativeTotals {
    counters: [u64; NUM_COUNTERS],
    buckets: [[u64; HIST_BUCKETS]; NUM_HISTS],
    hist_count: [u64; NUM_HISTS],
    hist_sum: [u64; NUM_HISTS],
    uptime_s: f64,
}

impl CumulativeTotals {
    fn zeroed() -> Self {
        CumulativeTotals {
            counters: [0; NUM_COUNTERS],
            buckets: [[0; HIST_BUCKETS]; NUM_HISTS],
            hist_count: [0; NUM_HISTS],
            hist_sum: [0; NUM_HISTS],
            uptime_s: 0.0,
        }
    }

    /// Copies a snapshot's totals into the fixed arrays without
    /// allocating. Positions beyond the snapshot's vocabulary (an older
    /// producer) read as zero; positions beyond ours are ignored.
    fn load(&mut self, snap: &MetricsSnapshot, uptime_s: f64) {
        self.counters = [0; NUM_COUNTERS];
        for (i, c) in snap.counters.iter().enumerate().take(NUM_COUNTERS) {
            self.counters[i] = c.value;
        }
        self.buckets = [[0; HIST_BUCKETS]; NUM_HISTS];
        self.hist_count = [0; NUM_HISTS];
        self.hist_sum = [0; NUM_HISTS];
        for (h, hist) in snap.histograms.iter().enumerate().take(NUM_HISTS) {
            for (b, v) in hist.buckets.iter().enumerate().take(HIST_BUCKETS) {
                self.buckets[h][b] = *v;
            }
            self.hist_count[h] = hist.count;
            self.hist_sum[h] = hist.sum;
        }
        self.uptime_s = uptime_s;
    }
}

/// One interval's worth of deltas plus point-in-time gauges.
///
/// All storage is fixed-size; frames are preallocated when the ring is
/// built and rewritten in place on wraparound.
#[derive(Clone)]
pub struct RollupFrame {
    /// Monotonic tick sequence number (the baseline tick is seq 0 and
    /// produces no frame; the first frame is seq 1).
    pub seq: u64,
    /// Server uptime at the *end* of the interval, in seconds.
    pub uptime_s: f64,
    /// Measured interval covered by this frame, in seconds.
    pub interval_s: f64,
    /// Admission-queue depth sampled at the tick.
    pub queue_depth: u64,
    /// Requests in flight at the tick.
    pub in_flight: u64,
    counters: [u64; NUM_COUNTERS],
    buckets: [[u64; HIST_BUCKETS]; NUM_HISTS],
    hist_count: [u64; NUM_HISTS],
    hist_sum: [u64; NUM_HISTS],
}

impl RollupFrame {
    fn zeroed() -> Self {
        RollupFrame {
            seq: 0,
            uptime_s: 0.0,
            interval_s: 0.0,
            queue_depth: 0,
            in_flight: 0,
            counters: [0; NUM_COUNTERS],
            buckets: [[0; HIST_BUCKETS]; NUM_HISTS],
            hist_count: [0; NUM_HISTS],
            hist_sum: [0; NUM_HISTS],
        }
    }

    /// Delta of `c` over this interval.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Observations of `h` recorded during this interval.
    pub fn hist_count(&self, h: Hist) -> u64 {
        self.hist_count[h as usize]
    }

    /// Windowed quantile of `h` over this single frame (ns-valued hists
    /// return ns).
    pub fn quantile(&self, h: Hist, q: f64) -> f64 {
        bucket_quantile(&self.buckets[h as usize], self.hist_count[h as usize], q)
    }
}

/// Quantile by bucket walk with linear interpolation inside the winning
/// power-of-two bucket. Shared by frames and windows.
fn bucket_quantile(buckets: &[u64; HIST_BUCKETS], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        if b == 0 {
            continue;
        }
        let next = seen + b;
        if rank <= next {
            let upper = bucket_upper_bound(i) as f64;
            let lower = if i == 0 {
                0.0
            } else {
                bucket_upper_bound(i - 1) as f64
            };
            let frac = (rank - seen) as f64 / b as f64;
            return lower + (upper - lower) * frac;
        }
        seen = next;
    }
    bucket_upper_bound(HIST_BUCKETS - 1) as f64
}

/// Aggregate view over the last *k* frames of a ring: windowed counts,
/// rates, and true windowed quantiles.
pub struct WindowStats {
    /// Frames actually summed (≤ requested: the ring may hold fewer).
    pub frames: usize,
    /// Wall-clock covered by the summed frames, in seconds.
    pub elapsed_s: f64,
    counters: [u64; NUM_COUNTERS],
    buckets: [[u64; HIST_BUCKETS]; NUM_HISTS],
    hist_count: [u64; NUM_HISTS],
    hist_sum: [u64; NUM_HISTS],
}

impl WindowStats {
    fn empty() -> Self {
        WindowStats {
            frames: 0,
            elapsed_s: 0.0,
            counters: [0; NUM_COUNTERS],
            buckets: [[0; HIST_BUCKETS]; NUM_HISTS],
            hist_count: [0; NUM_HISTS],
            hist_sum: [0; NUM_HISTS],
        }
    }

    /// Total delta of `c` over the window.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Per-second rate of `c` over the window (0 for an empty window).
    pub fn rate(&self, c: Counter) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.counter(c) as f64 / self.elapsed_s
        }
    }

    /// Observations of `h` within the window.
    pub fn hist_count(&self, h: Hist) -> u64 {
        self.hist_count[h as usize]
    }

    /// Sum of observed values of `h` within the window.
    pub fn hist_sum(&self, h: Hist) -> u64 {
        self.hist_sum[h as usize]
    }

    /// Windowed quantile of `h` (same bucket walk as the since-boot
    /// snapshot, applied to this window's bucket deltas only).
    pub fn quantile(&self, h: Hist, q: f64) -> f64 {
        bucket_quantile(&self.buckets[h as usize], self.hist_count[h as usize], q)
    }

    /// Answered requests per second over the window.
    pub fn qps(&self) -> f64 {
        self.rate(Counter::ServeRequests)
    }

    /// Windowed request latency quantile in milliseconds.
    pub fn latency_ms(&self, q: f64) -> f64 {
        self.quantile(Hist::ServeRequestNs, q) / 1e6
    }

    /// Errors over (requests + errors) within the window. `ServeErrors`
    /// counts requests rejected before admission, so they are not part of
    /// `ServeRequests` and the denominator adds them back.
    pub fn error_rate(&self) -> f64 {
        let errs = self.counter(Counter::ServeErrors);
        let total = self.counter(Counter::ServeRequests) + errs;
        if total == 0 {
            0.0
        } else {
            errs as f64 / total as f64
        }
    }

    /// Deadline drops over admitted requests within the window (drops are
    /// counted in `ServeRequests`: they were admitted, then expired).
    pub fn drop_rate(&self) -> f64 {
        let reqs = self.counter(Counter::ServeRequests);
        if reqs == 0 {
            0.0
        } else {
            self.counter(Counter::ServeDeadlineDropped) as f64 / reqs as f64
        }
    }

    /// Fraction of answered requests that rode a coalesced wave.
    pub fn coalesce_rate(&self) -> f64 {
        let reqs = self.counter(Counter::ServeRequests);
        if reqs == 0 {
            0.0
        } else {
            self.counter(Counter::ServeCoalescedRequests) as f64 / reqs as f64
        }
    }

    /// `(top_down, bottom_up)` step deltas — the windowed direction mix.
    pub fn direction_mix(&self) -> (u64, u64) {
        (
            self.counter(Counter::TopDownSteps),
            self.counter(Counter::BottomUpSteps),
        )
    }
}

/// Fixed-capacity ring of delta frames.
///
/// All frames are allocated up front; `tick` and `window` never touch the
/// heap. The first tick only establishes the cumulative baseline and
/// produces no frame (there is no interval to attribute the since-boot
/// totals to).
pub struct RollupRing {
    frames: Vec<RollupFrame>,
    head: usize,
    len: usize,
    ticks: u64,
    prev: CumulativeTotals,
    has_prev: bool,
}

impl RollupRing {
    /// Builds a ring with `capacity` preallocated frames (clamped to
    /// `1..=MAX_RING_CAPACITY`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.clamp(1, MAX_RING_CAPACITY);
        RollupRing {
            frames: vec![RollupFrame::zeroed(); capacity],
            head: 0,
            len: 0,
            ticks: 0,
            prev: CumulativeTotals::zeroed(),
            has_prev: false,
        }
    }

    /// Frame slots in the ring.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Frames currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True until the first post-baseline tick lands.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ticks observed so far (including the baseline tick).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ingests the latest cumulative snapshot. Diffs it against the
    /// previous totals and writes one delta frame in place (the first
    /// call records the baseline only). Returns `true` when a frame was
    /// produced.
    ///
    /// Counters are monotonic by construction, but a merged snapshot can
    /// transiently read *lower* than the previous merge when a session's
    /// publish races a restart; deltas saturate at zero rather than
    /// underflow.
    ///
    /// This is the warm path: it must not allocate.
    pub fn tick(
        &mut self,
        snap: &MetricsSnapshot,
        uptime_s: f64,
        queue_depth: u64,
        in_flight: u64,
    ) -> bool {
        self.ticks += 1;
        if !self.has_prev {
            self.prev.load(snap, uptime_s);
            self.has_prev = true;
            return false;
        }
        let cap = self.frames.len();
        let slot = &mut self.frames[self.head];
        slot.seq = self.ticks - 1;
        slot.uptime_s = uptime_s;
        slot.interval_s = (uptime_s - self.prev.uptime_s).max(0.0);
        slot.queue_depth = queue_depth;
        slot.in_flight = in_flight;
        slot.counters = [0; NUM_COUNTERS];
        for (i, c) in snap.counters.iter().enumerate().take(NUM_COUNTERS) {
            slot.counters[i] = c.value.saturating_sub(self.prev.counters[i]);
        }
        slot.buckets = [[0; HIST_BUCKETS]; NUM_HISTS];
        slot.hist_count = [0; NUM_HISTS];
        slot.hist_sum = [0; NUM_HISTS];
        for (h, hist) in snap.histograms.iter().enumerate().take(NUM_HISTS) {
            for (b, v) in hist.buckets.iter().enumerate().take(HIST_BUCKETS) {
                slot.buckets[h][b] = v.saturating_sub(self.prev.buckets[h][b]);
            }
            slot.hist_count[h] = hist.count.saturating_sub(self.prev.hist_count[h]);
            slot.hist_sum[h] = hist.sum.saturating_sub(self.prev.hist_sum[h]);
        }
        self.prev.load(snap, uptime_s);
        self.head = (self.head + 1) % cap;
        self.len = (self.len + 1).min(cap);
        true
    }

    /// Sums the newest `ticks` frames (fewer if the ring holds fewer).
    /// Allocation-free.
    pub fn window(&self, ticks: usize) -> WindowStats {
        let take = ticks.min(self.len);
        let mut w = WindowStats::empty();
        let cap = self.frames.len();
        for back in 1..=take {
            // head points at the next slot to write; newest frame is one
            // behind it.
            let idx = (self.head + cap - back) % cap;
            let f = &self.frames[idx];
            w.frames += 1;
            w.elapsed_s += f.interval_s;
            for i in 0..NUM_COUNTERS {
                w.counters[i] += f.counters[i];
            }
            for h in 0..NUM_HISTS {
                for b in 0..HIST_BUCKETS {
                    w.buckets[h][b] += f.buckets[h][b];
                }
                w.hist_count[h] += f.hist_count[h];
                w.hist_sum[h] += f.hist_sum[h];
            }
        }
        w
    }

    /// Retained frames, oldest first.
    pub fn frames_oldest_first(&self) -> impl Iterator<Item = &RollupFrame> {
        let cap = self.frames.len();
        let len = self.len;
        let head = self.head;
        (0..len).map(move |i| &self.frames[(head + cap - len + i) % cap])
    }
}

/// SLO thresholds; a `None` threshold is not evaluated.
#[derive(Clone, Copy, Default, Debug, PartialEq)]
pub struct SloConfig {
    /// Windowed p99 request latency ceiling, in milliseconds.
    pub p99_ms: Option<f64>,
    /// Windowed error-rate ceiling (errors / (requests + errors)).
    pub error_rate: Option<f64>,
    /// Windowed deadline-drop-rate ceiling (drops / requests).
    pub drop_rate: Option<f64>,
}

impl SloConfig {
    /// True when at least one threshold is configured.
    pub fn any(&self) -> bool {
        self.p99_ms.is_some() || self.error_rate.is_some() || self.drop_rate.is_some()
    }
}

/// Health verdict vocabulary (see DESIGN.md §16).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    /// Within budget over both windows.
    Ok,
    /// Over budget on the slow window only: the incident is over (or not
    /// yet acute) but the error budget is still burnt.
    Degraded,
    /// Over budget on the fast window: burning budget *right now*.
    Breaching,
}

impl SloState {
    /// Stable lowercase name used in `/debug/health` JSON.
    pub fn name(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Degraded => "degraded",
            SloState::Breaching => "breaching",
        }
    }
}

/// One SLO's evaluation: the threshold, both windowed values, and the
/// resulting state.
#[derive(Clone, Debug)]
pub struct SloEval {
    /// Stable SLO name: `p99_ms`, `error_rate`, or `drop_rate`.
    pub name: &'static str,
    /// Configured ceiling.
    pub threshold: f64,
    /// Value over the fast window.
    pub fast: f64,
    /// Value over the slow window.
    pub slow: f64,
    /// Verdict for this SLO.
    pub state: SloState,
}

/// Overall verdict: the worst per-SLO state plus each evaluation.
#[derive(Clone, Debug)]
pub struct HealthVerdict {
    /// Worst state across configured SLOs (`Ok` when none configured).
    pub state: SloState,
    /// Per-SLO evaluations, in config order.
    pub slos: Vec<SloEval>,
}

fn eval_one(name: &'static str, threshold: f64, fast: f64, slow: f64) -> SloEval {
    let state = if fast > threshold {
        SloState::Breaching
    } else if slow > threshold {
        SloState::Degraded
    } else {
        SloState::Ok
    };
    SloEval {
        name,
        threshold,
        fast,
        slow,
        state,
    }
}

/// Evaluates every configured SLO over the fast and slow windows.
///
/// Burn-rate semantics: exceeding the threshold over the *fast* window is
/// `breaching` regardless of the slow window (acute, page-worthy);
/// exceeding it only over the *slow* window is `degraded` (recent budget
/// burn; keeps the verdict from flapping straight back to `ok` the moment
/// a quiet fast window rolls in).
pub fn evaluate(cfg: &SloConfig, fast: &WindowStats, slow: &WindowStats) -> HealthVerdict {
    let mut slos = Vec::new();
    if let Some(t) = cfg.p99_ms {
        slos.push(eval_one(
            "p99_ms",
            t,
            fast.latency_ms(0.99),
            slow.latency_ms(0.99),
        ));
    }
    if let Some(t) = cfg.error_rate {
        slos.push(eval_one(
            "error_rate",
            t,
            fast.error_rate(),
            slow.error_rate(),
        ));
    }
    if let Some(t) = cfg.drop_rate {
        slos.push(eval_one("drop_rate", t, fast.drop_rate(), slow.drop_rate()));
    }
    let state = slos.iter().map(|s| s.state).max().unwrap_or(SloState::Ok);
    HealthVerdict { state, slos }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn snap_with(queries: u64, request_ns: &[u64]) -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new(1);
        {
            let mut d = reg.driver();
            d.add(Counter::Queries, queries);
            d.add(Counter::ServeRequests, request_ns.len() as u64);
            for &ns in request_ns {
                d.observe(Hist::ServeRequestNs, ns);
            }
        }
        reg.snapshot()
    }

    #[test]
    fn baseline_tick_produces_no_frame() {
        let mut ring = RollupRing::new(8);
        assert!(!ring.tick(&snap_with(5, &[]), 1.0, 0, 0));
        assert!(ring.is_empty());
        assert_eq!(ring.ticks(), 1);
        // The window over an empty ring is all zeros.
        let w = ring.window(8);
        assert_eq!(w.frames, 0);
        assert_eq!(w.qps(), 0.0);
    }

    #[test]
    fn tick_diffs_against_previous_totals() {
        let mut ring = RollupRing::new(8);
        ring.tick(&snap_with(10, &[1000]), 1.0, 0, 0);
        assert!(ring.tick(&snap_with(17, &[1000, 2000, 4000]), 2.0, 3, 1));
        let w = ring.window(1);
        assert_eq!(w.frames, 1);
        assert_eq!(w.counter(Counter::Queries), 7);
        assert_eq!(w.counter(Counter::ServeRequests), 2);
        assert_eq!(w.hist_count(Hist::ServeRequestNs), 2);
        assert!((w.elapsed_s - 1.0).abs() < 1e-9);
        assert!((w.rate(Counter::Queries) - 7.0).abs() < 1e-9);
        let newest = ring.frames_oldest_first().last().unwrap();
        assert_eq!(newest.queue_depth, 3);
        assert_eq!(newest.in_flight, 1);
        assert_eq!(newest.seq, 1);
    }

    #[test]
    fn regressing_totals_saturate_to_zero() {
        let mut ring = RollupRing::new(4);
        ring.tick(&snap_with(100, &[5000]), 1.0, 0, 0);
        assert!(ring.tick(&snap_with(40, &[]), 2.0, 0, 0));
        let w = ring.window(1);
        assert_eq!(w.counter(Counter::Queries), 0);
        assert_eq!(w.hist_count(Hist::ServeRequestNs), 0);
    }

    #[test]
    fn ring_wraparound_keeps_newest_frames() {
        let mut ring = RollupRing::new(3);
        let mut total = 0u64;
        ring.tick(&snap_with(total, &[]), 0.0, 0, 0);
        for i in 1..=7u64 {
            total += i;
            ring.tick(&snap_with(total, &[]), i as f64, 0, 0);
        }
        assert_eq!(ring.len(), 3);
        // Newest three deltas are 5, 6, 7.
        let w = ring.window(3);
        assert_eq!(w.counter(Counter::Queries), 18);
        let seqs: Vec<u64> = ring.frames_oldest_first().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        // A narrower window sums only the newest frames.
        assert_eq!(ring.window(1).counter(Counter::Queries), 7);
        // Requesting more than retained clamps.
        assert_eq!(ring.window(100).frames, 3);
    }

    #[test]
    fn windowed_quantiles_reflect_only_the_window() {
        let mut ring = RollupRing::new(8);
        // Baseline with a pile of fast requests already observed.
        ring.tick(&snap_with(0, &[100, 100, 100, 100]), 1.0, 0, 0);
        // The interval itself saw slow requests only.
        ring.tick(
            &snap_with(0, &[100, 100, 100, 100, 1_000_000, 1_000_000]),
            2.0,
            0,
            0,
        );
        let w = ring.window(1);
        assert_eq!(w.hist_count(Hist::ServeRequestNs), 2);
        // Since-boot p50 would be ~100ns; the windowed p50 must land in
        // the ~1ms bucket.
        assert!(w.quantile(Hist::ServeRequestNs, 0.5) > 500_000.0);
    }

    #[test]
    fn derived_rates() {
        let mut w = WindowStats::empty();
        w.elapsed_s = 2.0;
        w.counters[Counter::ServeRequests as usize] = 10;
        w.counters[Counter::ServeErrors as usize] = 10;
        w.counters[Counter::ServeDeadlineDropped as usize] = 5;
        w.counters[Counter::ServeCoalescedRequests as usize] = 4;
        w.counters[Counter::TopDownSteps as usize] = 30;
        w.counters[Counter::BottomUpSteps as usize] = 10;
        assert!((w.qps() - 5.0).abs() < 1e-9);
        assert!((w.error_rate() - 0.5).abs() < 1e-9);
        assert!((w.drop_rate() - 0.5).abs() < 1e-9);
        assert!((w.coalesce_rate() - 0.4).abs() < 1e-9);
        assert_eq!(w.direction_mix(), (30, 10));
        // Empty window: all rates are defined and zero.
        let e = WindowStats::empty();
        assert_eq!(e.qps(), 0.0);
        assert_eq!(e.error_rate(), 0.0);
        assert_eq!(e.drop_rate(), 0.0);
        assert_eq!(e.latency_ms(0.99), 0.0);
    }

    #[test]
    fn slo_states_follow_burn_rate_windows() {
        let mut fast = WindowStats::empty();
        let mut slow = WindowStats::empty();
        fast.elapsed_s = 1.0;
        slow.elapsed_s = 5.0;
        let cfg = SloConfig {
            p99_ms: None,
            error_rate: Some(0.1),
            drop_rate: Some(0.1),
        };

        // Quiet: ok.
        let v = evaluate(&cfg, &fast, &slow);
        assert_eq!(v.state, SloState::Ok);
        assert_eq!(v.slos.len(), 2);

        // Acute: fast window over threshold -> breaching.
        fast.counters[Counter::ServeRequests as usize] = 10;
        fast.counters[Counter::ServeErrors as usize] = 10;
        let v = evaluate(&cfg, &fast, &slow);
        assert_eq!(v.state, SloState::Breaching);
        assert_eq!(v.slos[0].state, SloState::Breaching);
        assert_eq!(v.slos[0].name, "error_rate");

        // Recovering: only the slow window still over -> degraded.
        fast.counters[Counter::ServeErrors as usize] = 0;
        slow.counters[Counter::ServeRequests as usize] = 10;
        slow.counters[Counter::ServeErrors as usize] = 10;
        let v = evaluate(&cfg, &fast, &slow);
        assert_eq!(v.state, SloState::Degraded);

        // No SLOs configured: always ok.
        let v = evaluate(&SloConfig::default(), &fast, &slow);
        assert_eq!(v.state, SloState::Ok);
        assert!(v.slos.is_empty());
    }

    #[test]
    fn bucket_quantile_walks_and_interpolates() {
        let mut buckets = [0u64; HIST_BUCKETS];
        // 10 values in bucket 7 (64..=127).
        buckets[7] = 10;
        let p50 = bucket_quantile(&buckets, 10, 0.5);
        assert!(p50 > 63.0 && p50 <= 127.0);
        assert_eq!(bucket_quantile(&buckets, 0, 0.5), 0.0);
        // Quantiles are monotone in q.
        buckets[12] = 10;
        let lo = bucket_quantile(&buckets, 20, 0.25);
        let hi = bucket_quantile(&buckets, 20, 0.99);
        assert!(lo <= hi);
    }

    #[test]
    fn capacity_is_clamped() {
        assert_eq!(RollupRing::new(0).capacity(), 1);
        assert_eq!(RollupRing::new(1 << 20).capacity(), MAX_RING_CAPACITY);
    }
}
