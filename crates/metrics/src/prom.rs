//! Prometheus text exposition (version 0.0.4) of a [`MetricsSnapshot`].
//!
//! Naming: every series is prefixed `fastbfs_`. Aggregated counters become
//! `fastbfs_<name>_total`; per-thread rows become
//! `fastbfs_thread_<name>_total{thread="i"}`; histograms follow the
//! standard `_bucket{le=...}` / `_sum` / `_count` convention with
//! cumulative buckets at the registry's power-of-two bounds.

use crate::registry::{bucket_upper_bound, Counter, Hist, HIST_BUCKETS};
use crate::snapshot::MetricsSnapshot;

/// Thread-scope counters worth a per-thread series (the load-imbalance
/// signals); driver-scope totals stay aggregate-only to keep the page small.
const PER_THREAD: [Counter; 6] = [
    Counter::Phase1Ns,
    Counter::Phase2Ns,
    Counter::BottomUpNs,
    Counter::RearrangeNs,
    Counter::BarrierNs,
    Counter::Enqueued,
];

/// Renders the snapshot as Prometheus text exposition.
pub fn render(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for c in Counter::ALL {
        let name = c.name();
        let _ = writeln!(out, "# HELP fastbfs_{name}_total {}", help(c));
        let _ = writeln!(out, "# TYPE fastbfs_{name}_total counter");
        let _ = writeln!(out, "fastbfs_{name}_total {}", snap.total(c));
    }
    for c in PER_THREAD {
        let name = c.name();
        let _ = writeln!(out, "# TYPE fastbfs_thread_{name}_total counter");
        for t in &snap.per_thread {
            let _ = writeln!(
                out,
                "fastbfs_thread_{name}_total{{thread=\"{}\"}} {}",
                t.thread, t.values[c as usize]
            );
        }
    }
    for h in Hist::ALL {
        let hs = snap.histogram(h);
        let name = h.name();
        let _ = writeln!(out, "# TYPE fastbfs_{name} histogram");
        let mut cum = 0u64;
        for (i, &c) in hs.buckets.iter().enumerate() {
            cum += c;
            if c == 0 && i + 1 < HIST_BUCKETS {
                continue; // keep the page sparse; cumulative sums stay exact
            }
            let le = if i + 1 >= HIST_BUCKETS {
                "+Inf".to_string()
            } else {
                bucket_upper_bound(i).to_string()
            };
            let _ = writeln!(out, "fastbfs_{name}_bucket{{le=\"{le}\"}} {cum}");
        }
        if hs.buckets[HIST_BUCKETS - 1] == 0 {
            let _ = writeln!(out, "fastbfs_{name}_bucket{{le=\"+Inf\"}} {cum}");
        }
        let _ = writeln!(out, "fastbfs_{name}_sum {}", hs.sum);
        let _ = writeln!(out, "fastbfs_{name}_count {}", hs.count);
    }
    out
}

fn help(c: Counter) -> &'static str {
    match c {
        Counter::Queries => "BFS queries served",
        Counter::QueryNs => "Query wall-clock nanoseconds",
        Counter::Steps => "BFS steps executed",
        Counter::TopDownSteps => "Steps run with the top-down kernel",
        Counter::BottomUpSteps => "Steps run with the bottom-up kernel",
        Counter::DirectionSwitches => "Per-level direction changes",
        Counter::VisitedVertices => "Vertices visited",
        Counter::TraversedEdges => "Edges traversed",
        Counter::DuplicateEnqueues => "Benign-race duplicate enqueues",
        Counter::Phase1Ns => "Phase I scatter nanoseconds (all threads)",
        Counter::Phase2Ns => "Phase II bin-walk nanoseconds (all threads)",
        Counter::BottomUpNs => "Bottom-up probe nanoseconds (all threads)",
        Counter::RearrangeNs => "Frontier rearrangement nanoseconds (all threads)",
        Counter::BarrierNs => "Barrier wait nanoseconds (all threads)",
        Counter::ScatteredEdges => "Neighbors scattered into PBV bins",
        Counter::BinEntries => "Entries decoded from PBV bins",
        Counter::EdgeChecks => "Bottom-up neighbor probes",
        Counter::Enqueued => "Successful depth claims (duplicates included)",
        Counter::BinningOps => "SIMD bin-index kernel operations",
        Counter::Phase1HwCycles => "Hardware cycles in Phase I (0 when perf is unavailable)",
        Counter::Phase1HwInstructions => "Hardware instructions retired in Phase I",
        Counter::Phase1LlcMisses => "LLC load misses in Phase I",
        Counter::Phase1DtlbMisses => "dTLB load misses in Phase I",
        Counter::Phase2HwCycles => "Hardware cycles in Phase II (0 when perf is unavailable)",
        Counter::Phase2HwInstructions => "Hardware instructions retired in Phase II",
        Counter::Phase2LlcMisses => "LLC load misses in Phase II",
        Counter::Phase2DtlbMisses => "dTLB load misses in Phase II",
        Counter::BottomUpHwCycles => {
            "Hardware cycles in bottom-up scans (0 when perf is unavailable)"
        }
        Counter::BottomUpHwInstructions => "Hardware instructions retired in bottom-up scans",
        Counter::BottomUpLlcMisses => "LLC load misses in bottom-up scans",
        Counter::BottomUpDtlbMisses => "dTLB load misses in bottom-up scans",
        Counter::RearrangeHwCycles => {
            "Hardware cycles in rearrangement (0 when perf is unavailable)"
        }
        Counter::RearrangeHwInstructions => "Hardware instructions retired in rearrangement",
        Counter::RearrangeLlcMisses => "LLC load misses in rearrangement",
        Counter::RearrangeDtlbMisses => "dTLB load misses in rearrangement",
        Counter::ServeRequests => "Query-path HTTP requests admitted",
        Counter::ServeErrors => "Query-path HTTP requests rejected or failed",
        Counter::ServeParseNs => "Request parse nanoseconds",
        Counter::ServeQueueNs => "Admission-queue wait nanoseconds",
        Counter::ServeExecNs => "Request traversal-execution nanoseconds",
        Counter::ServeSerializeNs => "Response serialization nanoseconds",
        Counter::ServeCoalescedWaves => "Dispatch waves that batched two or more queued requests",
        Counter::ServeCoalescedRequests => "Requests served inside a coalesced wave",
        Counter::ServeDeadlineDropped => {
            "Requests answered 504 after their deadline expired in the queue"
        }
        Counter::ServeTraceSampled => {
            "Requests whose flight-recorder trace was kept in full by the tail sampler"
        }
        Counter::ServeTraceDigest => "Requests retained as an id+latency trace digest only",
    }
}

/// Appends one gauge sample (with `# HELP`/`# TYPE` preamble) to `out`.
/// Label values are escaped per the exposition format (backslash, quote,
/// newline).
pub fn render_gauge(out: &mut String, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let rendered: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        let _ = writeln!(out, "{name}{{{}}} {value}", rendered.join(","));
    }
}

/// Appends one labeled gauge family (with `# HELP`/`# TYPE` preamble) to
/// `out`: one sample line per `(label value, sample)` pair. The preamble
/// is written once for the whole family — repeating it per sample, as
/// calling [`render_gauge`] in a loop would, is malformed exposition.
pub fn render_labeled_gauge(
    out: &mut String,
    name: &str,
    help: &str,
    label: &str,
    series: &[(String, f64)],
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (value, sample) in series {
        let _ = writeln!(
            out,
            "{name}{{{label}=\"{}\"}} {sample}",
            escape_label(value)
        );
    }
}

/// Appends one labeled counter family (with `# HELP`/`# TYPE` preamble)
/// to `out`: one sample line per `(label value, sample)` pair, all under
/// the same label name. Used by the multi-session server for per-session
/// monotonic series like `fastbfs_session_requests_total{session="0"}`.
pub fn render_labeled_counter(
    out: &mut String,
    name: &str,
    help: &str,
    label: &str,
    series: &[(String, u64)],
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (value, sample) in series {
        let _ = writeln!(
            out,
            "{name}{{{label}=\"{}\"}} {sample}",
            escape_label(value)
        );
    }
}

/// `fastbfs_build_info`: the conventional constant-`1` provenance gauge
/// whose labels carry what `RunReport::capture_environment` records —
/// scrapes become joinable with committed baselines by git revision.
pub fn render_build_info(
    out: &mut String,
    version: &str,
    git_rev: Option<&str>,
    rustc: Option<&str>,
) {
    render_gauge(
        out,
        "fastbfs_build_info",
        "Build provenance; value is always 1",
        &[
            ("version", version),
            ("git_rev", git_rev.unwrap_or("unknown")),
            ("rustc", rustc.unwrap_or("unknown")),
        ],
        1.0,
    );
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn exposition_has_totals_threads_and_cumulative_buckets() {
        let mut reg = MetricsRegistry::new(2);
        {
            let mut w0 = reg.writer(0);
            w0.add(Counter::Phase1Ns, 123);
            w0.observe(Hist::StepNs, 5);
            w0.observe(Hist::StepNs, 900);
        }
        {
            let mut w1 = reg.writer(1);
            w1.add(Counter::Phase1Ns, 77);
        }
        {
            let mut d = reg.driver();
            d.add(Counter::Queries, 3);
        }
        let text = render(&reg.snapshot());
        assert!(text.contains("fastbfs_queries_total 3"), "{text}");
        assert!(text.contains("fastbfs_phase1_ns_total 200"), "{text}");
        assert!(
            text.contains("fastbfs_thread_phase1_ns_total{thread=\"0\"} 123"),
            "{text}"
        );
        assert!(
            text.contains("fastbfs_thread_phase1_ns_total{thread=\"1\"} 77"),
            "{text}"
        );
        // 5 lands in the le="7" bucket, 900 in le="1023"; +Inf carries the
        // full count.
        assert!(
            text.contains("fastbfs_step_ns_bucket{le=\"7\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("fastbfs_step_ns_bucket{le=\"1023\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("fastbfs_step_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("fastbfs_step_ns_sum 905"), "{text}");
        assert!(text.contains("fastbfs_step_ns_count 2"), "{text}");
        // Every TYPE line is well-formed.
        for line in text.lines().filter(|l| l.starts_with("# TYPE")) {
            let parts: Vec<_> = line.split_whitespace().collect();
            assert_eq!(parts.len(), 4, "{line}");
            assert!(parts[3] == "counter" || parts[3] == "histogram", "{line}");
        }
    }

    #[test]
    fn serve_lifecycle_series_are_rendered() {
        let mut reg = MetricsRegistry::new(1);
        {
            let mut d = reg.driver();
            d.add(Counter::ServeRequests, 9);
            d.add(Counter::ServeQueueNs, 1234);
            d.observe(Hist::ServeRequestNs, 1 << 20);
        }
        let text = render(&reg.snapshot());
        assert!(text.contains("fastbfs_serve_requests_total 9"), "{text}");
        assert!(text.contains("fastbfs_serve_queue_ns_total 1234"), "{text}");
        assert!(text.contains("fastbfs_serve_request_ns_count 1"), "{text}");
        assert!(
            text.contains("# TYPE fastbfs_serve_request_ns histogram"),
            "{text}"
        );
    }

    #[test]
    fn gauges_and_build_info_render_with_escaped_labels() {
        let mut out = String::new();
        render_gauge(
            &mut out,
            "fastbfs_queue_depth",
            "Requests waiting",
            &[],
            3.0,
        );
        assert!(out.contains("# TYPE fastbfs_queue_depth gauge"), "{out}");
        assert!(out.contains("fastbfs_queue_depth 3"), "{out}");

        let mut info = String::new();
        render_build_info(&mut info, "0.1.0", Some("abc123"), Some("rustc \"x\""));
        assert!(
            info.contains("fastbfs_build_info{version=\"0.1.0\",git_rev=\"abc123\",rustc=\"rustc \\\"x\\\"\"} 1"),
            "{info}"
        );
        let mut none = String::new();
        render_build_info(&mut none, "0.1.0", None, None);
        assert!(none.contains("git_rev=\"unknown\""), "{none}");
    }

    #[test]
    fn labeled_counter_renders_one_line_per_series() {
        let mut out = String::new();
        render_labeled_counter(
            &mut out,
            "fastbfs_session_requests_total",
            "Requests dispatched per session",
            "session",
            &[("0".to_string(), 12), ("1".to_string(), 7)],
        );
        assert!(
            out.contains("# TYPE fastbfs_session_requests_total counter"),
            "{out}"
        );
        assert!(
            out.contains("fastbfs_session_requests_total{session=\"0\"} 12"),
            "{out}"
        );
        assert!(
            out.contains("fastbfs_session_requests_total{session=\"1\"} 7"),
            "{out}"
        );
    }
}
