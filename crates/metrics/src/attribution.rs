//! Model-vs-measured attribution: joins a live [`MetricsSnapshot`] (and
//! optionally a per-step trace) against the §IV analytical model, phase by
//! phase.
//!
//! The join works in *bandwidth* space. The registry records how long each
//! phase ran and how many work units it processed (scattered neighbors,
//! decoded bin entries, bottom-up probes, claimed vertices); the model says
//! how many DDR bytes each unit should cost (eqns IV.1a–IV.1d). Multiplying
//! measured units by modelled bytes/edge and dividing by measured busy time
//! yields the *achieved* bandwidth of each phase, directly comparable to
//! the bandwidth the model predicts the phase should sustain — the gap is
//! where the implementation leaves the machine idle.

use serde::{Deserialize, Serialize};

use crate::registry::{Counter, Hist};
use crate::snapshot::MetricsSnapshot;
use bfs_model::{predict, GraphParams, MachineSpec, Prediction};
use bfs_trace::TraceEvent;

/// One phase's measured-vs-modelled row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseAttribution {
    /// Phase name: `phase1`, `phase2`, `bottom_up`, `rearrange`, `barrier`.
    pub phase: String,
    /// Nanoseconds summed over worker threads.
    pub busy_ns: u64,
    /// Fraction of total worker time (busy + barrier) this phase took.
    pub share: f64,
    /// Work units processed (phase-specific: scattered neighbors, bin
    /// entries, probes, claims; 0 for `barrier`).
    pub units: u64,
    /// Modelled DDR bytes per unit; `None` where the model has no term
    /// (barrier, bottom-up).
    pub model_bpe: Option<f64>,
    /// Achieved DDR bandwidth in GB/s: `model_bpe × units` bytes over the
    /// phase's mean per-thread time. `None` without a model term or time.
    pub measured_gbps: Option<f64>,
    /// Bandwidth the §IV model predicts the phase sustains on this machine.
    pub predicted_gbps: Option<f64>,
    /// Hardware cycles spent in this phase (perf counter groups sampled at
    /// the engine's phase seams). `None` when counters were unavailable,
    /// not requested, or the phase has no seam (barrier).
    pub hw_cycles: Option<u64>,
    /// Instructions retired in this phase.
    pub hw_instructions: Option<u64>,
    /// LLC load misses in this phase.
    pub hw_llc_misses: Option<u64>,
    /// dTLB load misses in this phase.
    pub hw_dtlb_misses: Option<u64>,
    /// Achieved DDR bandwidth from *measured* traffic:
    /// `hw_llc_misses × cache_line` bytes over the phase's mean per-thread
    /// time — the counter-backed counterpart of the model-derived
    /// `measured_gbps`, letting the two estimates cross-check each other.
    pub hw_gbps: Option<f64>,
    /// *Measured* DDR bytes per work unit: `hw_llc_misses × cache_line`
    /// over `units` — directly comparable to `model_bpe` on the same row.
    /// This is the column the layout levers move: degree-ordered relabeling
    /// and hugepage-backed arenas should push the Phase I measured value
    /// below the model's §IV.1a prediction. `None` without hardware
    /// counters or units.
    pub measured_bpe: Option<f64>,
}

/// One step's measured-vs-modelled row (needs a trace; `fastbfs metrics`
/// records the final query through a ring sink to fill these).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepAttribution {
    /// Step number.
    pub step: u32,
    /// Kernel that ran the level, if the trace recorded it.
    pub direction: Option<String>,
    /// Enqueues this step (duplicates included).
    pub frontier: u64,
    /// Critical-path latency (slowest thread's phase sum).
    pub latency_ns: u64,
    /// Neighbors scattered in Phase I (`None` on bottom-up levels).
    pub scattered: Option<u64>,
    /// Achieved DDR bandwidth across the step's critical path, GB/s.
    pub measured_gbps: Option<f64>,
    /// Model-predicted top-down bandwidth for comparison (`None` on
    /// bottom-up levels — the §IV model has no bottom-up term).
    pub predicted_gbps: Option<f64>,
}

/// One socket's share of worker time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SocketLoad {
    /// Socket index.
    pub socket: usize,
    /// Busy nanoseconds summed over the socket's lanes.
    pub busy_ns: u64,
    /// Barrier-wait nanoseconds summed over the socket's lanes.
    pub barrier_ns: u64,
    /// `busy_ns` relative to the mean socket (1.0 = perfectly even).
    pub imbalance: f64,
}

/// The full attribution report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// Queries the snapshot covers.
    pub queries: u64,
    /// BFS steps the snapshot covers.
    pub steps: u64,
    /// Measured throughput: traversed edges over query wall-clock, MTEPS.
    pub measured_mteps: f64,
    /// The model's MTEPS prediction for this machine and graph shape.
    pub predicted_mteps: f64,
    /// `measured / predicted` (1.0 = the implementation achieves the
    /// model; the paper reports ~0.85–0.95 on real hardware).
    pub model_ratio: f64,
    /// Access skew fed to the model.
    pub alpha: f64,
    /// Per-phase rows.
    pub phases: Vec<PhaseAttribution>,
    /// Per-step rows (empty without a trace).
    pub step_detail: Vec<StepAttribution>,
    /// Per-socket load split.
    pub sockets: Vec<SocketLoad>,
    /// Worst worker's busy time over the mean (1.0 = perfectly even).
    pub thread_imbalance: f64,
    /// `Some(reason)` when hardware counters were requested but could not
    /// be opened (permission, no vPMU, non-Linux host); rendered as an
    /// explicit marker so model-only rows are never mistaken for measured
    /// ones. `None` when counters ran or were never requested.
    pub hw_unavailable: Option<String>,
    /// Phase I dTLB load misses per scattered neighbor. §III-C's argument
    /// for frontier rearrangement is that sorting the boundary vertices
    /// makes the scatter walk pages in order, collapsing this rate toward
    /// zero; runs with rearrangement disabled show the "before" rate.
    /// `None` without hardware counters or scatter work.
    pub dtlb_per_scatter: Option<f64>,
    /// The underlying model prediction, in full.
    pub prediction: Prediction,
}

/// Everything the join needs besides the snapshot itself.
pub struct AttributionContext<'a> {
    /// Machine the model should predict for (typically a paper spec scaled
    /// to the host's socket/lane count).
    pub machine: &'a MachineSpec,
    /// Vertices in the traversed graph.
    pub num_vertices: u64,
    /// Lanes per socket in the live topology (groups per-thread counters
    /// into sockets).
    pub lanes_per_socket: usize,
    /// Access skew `α_Adj` for the multi-socket composition.
    pub alpha: f64,
    /// Cache-line size in bytes (from the live topology); converts
    /// measured LLC misses into DDR bytes.
    pub cache_line: usize,
    /// `Some(reason)` when hardware counters were requested but
    /// unavailable on this host; copied into the report verbatim.
    pub hw_unavailable: Option<String>,
}

impl AttributionReport {
    /// Joins `snap` (and optional per-step `events`) against the model.
    ///
    /// The graph shape fed to the model is recovered from the snapshot's
    /// own per-query averages (visited vertices, traversed edges, depth),
    /// so the prediction describes the *same workload* the counters
    /// measured. Panics if the snapshot covers no queries.
    pub fn build(snap: &MetricsSnapshot, events: &[TraceEvent], ctx: &AttributionContext) -> Self {
        let queries = snap.total(Counter::Queries);
        assert!(queries > 0, "attribution needs at least one recorded query");
        let steps = snap.total(Counter::Steps);
        let traversed = snap.total(Counter::TraversedEdges);
        let query_ns = snap.total(Counter::QueryNs);

        let g = GraphParams {
            num_vertices: ctx.num_vertices,
            visited_vertices: (snap.total(Counter::VisitedVertices) / queries).max(1),
            traversed_edges: (traversed / queries).max(1),
            depth: ((steps / queries) as u32).max(1),
        };
        let p = predict(ctx.machine, &g, ctx.alpha);
        let freq = ctx.machine.freq_ghz;
        let sockets = ctx.machine.sockets;

        let measured_mteps = if query_ns > 0 {
            traversed as f64 / (query_ns as f64 / 1e9) / 1e6
        } else {
            0.0
        };
        let predicted_mteps = if sockets > 1 {
            p.mteps_multi
        } else {
            p.mteps_single
        };

        let workers = snap.workers.max(1) as f64;
        // Hardware counters accumulate only when the engine opened perf
        // groups; an all-zero block means model-only rows.
        let hw_measured = Counter::HW_BY_PHASE
            .iter()
            .flatten()
            .any(|&c| snap.total(c) > 0);
        // (name, time counter, unit counter, model bytes/unit,
        //  predicted GB/s, HW_BY_PHASE row)
        type PhaseRow = (
            &'static str,
            Counter,
            Counter,
            Option<f64>,
            Option<f64>,
            Option<usize>,
        );
        let phase_rows: [PhaseRow; 5] = [
            (
                "phase1",
                Counter::Phase1Ns,
                Counter::ScatteredEdges,
                Some(p.phase1_ddr_bpe),
                Some(p.phase1_gbps(freq, sockets)),
                Some(0),
            ),
            (
                "phase2",
                Counter::Phase2Ns,
                Counter::BinEntries,
                Some(p.phase2_ddr_bpe),
                Some(p.phase2_gbps(freq, sockets)),
                Some(1),
            ),
            // The paper's §IV predates direction optimization; the
            // bytes-per-probe term is this repo's model extension
            // (`bfs_model::traffic::bottom_up_ddr`).
            (
                "bottom_up",
                Counter::BottomUpNs,
                Counter::EdgeChecks,
                Some(p.bottom_up_bpe),
                Some(p.bottom_up_gbps(freq, sockets)),
                Some(2),
            ),
            (
                "rearrange",
                Counter::RearrangeNs,
                Counter::Enqueued,
                Some(p.rearrange_bpe),
                Some(p.rearrange_gbps(freq, sockets)),
                Some(3),
            ),
            (
                "barrier",
                Counter::BarrierNs,
                Counter::BarrierNs,
                None,
                None,
                None,
            ),
        ];
        let total_ns: u64 = phase_rows.iter().map(|r| snap.total(r.1)).sum();
        let phases: Vec<PhaseAttribution> = phase_rows
            .iter()
            .map(|(name, time_c, unit_c, bpe, predicted, hw_row)| {
                let busy_ns = snap.total(*time_c);
                let units = if *name == "barrier" {
                    0
                } else {
                    snap.total(*unit_c)
                };
                let measured_gbps = match bpe {
                    Some(b) if busy_ns > 0 => {
                        // Phases run on all workers concurrently; the mean
                        // per-thread time is the phase's wall-clock stand-in.
                        let wall_ns = busy_ns as f64 / workers;
                        Some(*b * units as f64 / wall_ns)
                    }
                    _ => None,
                };
                let hw = hw_row.filter(|_| hw_measured).map(|i| {
                    let [cy, ins, llc, dtlb] = Counter::HW_BY_PHASE[i];
                    (
                        snap.total(cy),
                        snap.total(ins),
                        snap.total(llc),
                        snap.total(dtlb),
                    )
                });
                let hw_gbps = hw.and_then(|(_, _, llc, _)| {
                    (busy_ns > 0).then(|| {
                        let bytes = llc as f64 * ctx.cache_line as f64;
                        bytes / (busy_ns as f64 / workers)
                    })
                });
                let measured_bpe = hw.and_then(|(_, _, llc, _)| {
                    (units > 0).then(|| llc as f64 * ctx.cache_line as f64 / units as f64)
                });
                PhaseAttribution {
                    phase: name.to_string(),
                    busy_ns,
                    share: if total_ns > 0 {
                        busy_ns as f64 / total_ns as f64
                    } else {
                        0.0
                    },
                    units,
                    model_bpe: *bpe,
                    measured_gbps,
                    predicted_gbps: *predicted,
                    hw_cycles: hw.map(|h| h.0),
                    hw_instructions: hw.map(|h| h.1),
                    hw_llc_misses: hw.map(|h| h.2),
                    hw_dtlb_misses: hw.map(|h| h.3),
                    hw_gbps,
                    measured_bpe,
                }
            })
            .collect();
        let dtlb_per_scatter = phases[0]
            .hw_dtlb_misses
            .filter(|_| phases[0].units > 0)
            .map(|m| m as f64 / phases[0].units as f64);

        let td_bpe = p.phase1_ddr_bpe + p.phase2_ddr_bpe + p.rearrange_bpe;
        let c = p.cycles_for(sockets);
        let td_predicted = if c.total > 0.0 {
            td_bpe * freq / c.total
        } else {
            0.0
        };
        let step_detail = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Step(s) => Some(s),
                _ => None,
            })
            .map(|s| {
                let latency_ns = s.latency_ns();
                let measured_gbps = s.scattered.and_then(|sc| {
                    (latency_ns > 0).then(|| td_bpe * sc as f64 / latency_ns as f64)
                });
                StepAttribution {
                    step: s.step,
                    direction: s.direction.clone(),
                    frontier: s.frontier,
                    latency_ns,
                    scattered: s.scattered,
                    measured_gbps,
                    predicted_gbps: s.scattered.map(|_| td_predicted),
                }
            })
            .collect();

        let busy: Vec<u64> = (0..snap.workers).map(|t| snap.thread_busy_ns(t)).collect();
        let lanes = ctx.lanes_per_socket.max(1);
        let socket_busy: Vec<u64> = {
            let n = snap.workers.div_ceil(lanes);
            let mut v = vec![0u64; n];
            for (t, b) in busy.iter().enumerate() {
                v[t / lanes] += b;
            }
            v
        };
        let socket_barrier = snap.per_socket(lanes, Counter::BarrierNs);
        let mean_socket = socket_busy.iter().sum::<u64>() as f64 / socket_busy.len().max(1) as f64;
        let sockets_out = socket_busy
            .iter()
            .zip(&socket_barrier)
            .enumerate()
            .map(|(i, (&b, &w))| SocketLoad {
                socket: i,
                busy_ns: b,
                barrier_ns: w,
                imbalance: if mean_socket > 0.0 {
                    b as f64 / mean_socket
                } else {
                    1.0
                },
            })
            .collect();
        let mean_thread = busy.iter().sum::<u64>() as f64 / busy.len().max(1) as f64;
        let thread_imbalance = if mean_thread > 0.0 {
            busy.iter().copied().max().unwrap_or(0) as f64 / mean_thread
        } else {
            1.0
        };

        AttributionReport {
            queries,
            steps,
            measured_mteps,
            predicted_mteps,
            model_ratio: if predicted_mteps > 0.0 {
                measured_mteps / predicted_mteps
            } else {
                0.0
            },
            alpha: ctx.alpha,
            phases,
            step_detail,
            sockets: sockets_out,
            thread_imbalance,
            hw_unavailable: ctx.hw_unavailable.clone(),
            dtlb_per_scatter,
            prediction: p,
        }
    }

    /// Human-readable rendering (the CLI's default output).
    pub fn render_text(&self, snap: &MetricsSnapshot) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "queries: {}   steps: {}   measured: {:.1} MTEPS   model: {:.1} MTEPS   ratio: {:.3}",
            self.queries, self.steps, self.measured_mteps, self.predicted_mteps, self.model_ratio
        );
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>7} {:>14} {:>10} {:>11} {:>11}",
            "phase", "busy_ms", "share", "units", "model_B/e", "meas_GB/s", "pred_GB/s"
        );
        for ph in &self.phases {
            let _ = writeln!(
                out,
                "{:<10} {:>12.3} {:>6.1}% {:>14} {:>10} {:>11} {:>11}",
                ph.phase,
                ph.busy_ns as f64 / 1e6,
                ph.share * 100.0,
                ph.units,
                ph.model_bpe.map_or("-".into(), |v| format!("{v:.1}")),
                ph.measured_gbps.map_or("-".into(), |v| format!("{v:.2}")),
                ph.predicted_gbps.map_or("-".into(), |v| format!("{v:.2}")),
            );
        }
        if let Some(reason) = &self.hw_unavailable {
            let _ = writeln!(out, "hw: unavailable ({reason}) — model-only rows");
        } else if self.phases.iter().any(|p| p.hw_cycles.is_some()) {
            let _ = writeln!(
                out,
                "{:<10} {:>14} {:>14} {:>6} {:>12} {:>11} {:>12} {:>9}",
                "phase",
                "hw_cycles",
                "hw_instr",
                "ipc",
                "llc_miss",
                "hw_GB/s",
                "dtlb_miss",
                "meas_B/e"
            );
            for ph in self.phases.iter().filter(|p| p.hw_cycles.is_some()) {
                let cy = ph.hw_cycles.unwrap_or(0);
                let ipc = ph
                    .hw_instructions
                    .filter(|_| cy > 0)
                    .map(|i| i as f64 / cy as f64);
                let _ = writeln!(
                    out,
                    "{:<10} {:>14} {:>14} {:>6} {:>12} {:>11} {:>12} {:>9}",
                    ph.phase,
                    cy,
                    ph.hw_instructions.unwrap_or(0),
                    ipc.map_or("-".into(), |v| format!("{v:.2}")),
                    ph.hw_llc_misses.unwrap_or(0),
                    ph.hw_gbps.map_or("-".into(), |v| format!("{v:.2}")),
                    ph.hw_dtlb_misses.unwrap_or(0),
                    ph.measured_bpe.map_or("-".into(), |v| format!("{v:.2}")),
                );
            }
            if let Some(rate) = self.dtlb_per_scatter {
                let _ = writeln!(
                    out,
                    "dTLB/scattered entry (phase1): {rate:.4} — §III-C rearrangement drives this toward 0"
                );
            }
        }
        if !self.step_detail.is_empty() {
            let _ = writeln!(
                out,
                "{:<6} {:>10} {:>10} {:>12} {:>11} {:>11}  direction",
                "step", "frontier", "scattered", "latency_us", "meas_GB/s", "pred_GB/s"
            );
            for s in &self.step_detail {
                let _ = writeln!(
                    out,
                    "{:<6} {:>10} {:>10} {:>12.1} {:>11} {:>11}  {}",
                    s.step,
                    s.frontier,
                    s.scattered.map_or("-".into(), |v| v.to_string()),
                    s.latency_ns as f64 / 1e3,
                    s.measured_gbps.map_or("-".into(), |v| format!("{v:.2}")),
                    s.predicted_gbps.map_or("-".into(), |v| format!("{v:.2}")),
                    s.direction.as_deref().unwrap_or("-"),
                );
            }
        }
        for s in &self.sockets {
            let _ = writeln!(
                out,
                "socket {}: busy {:.3} ms, barrier {:.3} ms, load {:.3}x mean",
                s.socket,
                s.busy_ns as f64 / 1e6,
                s.barrier_ns as f64 / 1e6,
                s.imbalance
            );
        }
        let _ = writeln!(
            out,
            "thread imbalance (max/mean busy): {:.3}",
            self.thread_imbalance
        );
        let q = snap.histogram(Hist::QueryNs);
        let st = snap.histogram(Hist::StepNs);
        let _ = writeln!(
            out,
            "latency: query p50 {:.2} ms, p99 {:.2} ms; thread-step p50 {:.1} us, p99 {:.1} us",
            q.quantile(0.5) / 1e6,
            q.quantile(0.99) / 1e6,
            st.quantile(0.5) / 1e3,
            st.quantile(0.99) / 1e3,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use bfs_trace::{StepEvent, ThreadStep};

    fn synthetic_snapshot() -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new(2);
        for t in 0..2 {
            let mut w = reg.writer(t);
            w.add(Counter::Phase1Ns, 4_000_000);
            w.add(Counter::Phase2Ns, 3_000_000);
            w.add(Counter::RearrangeNs, 500_000);
            w.add(Counter::BarrierNs, 250_000);
            w.add(Counter::ScatteredEdges, 400_000);
            w.add(Counter::BinEntries, 400_000);
            w.add(Counter::Enqueued, 60_000);
        }
        {
            let mut d = reg.driver();
            d.add(Counter::Queries, 1);
            d.add(Counter::QueryNs, 9_000_000);
            d.add(Counter::Steps, 8);
            d.add(Counter::VisitedVertices, 120_000);
            d.add(Counter::TraversedEdges, 800_000);
        }
        reg.snapshot()
    }

    fn ctx(machine: &MachineSpec) -> AttributionContext<'_> {
        AttributionContext {
            machine,
            num_vertices: 1 << 20,
            lanes_per_socket: 1,
            alpha: 0.6,
            cache_line: 64,
            hw_unavailable: None,
        }
    }

    #[test]
    fn phases_join_against_the_model() {
        let m = MachineSpec::xeon_x5570_2s();
        let snap = synthetic_snapshot();
        let r = AttributionReport::build(&snap, &[], &ctx(&m));
        assert_eq!(r.queries, 1);
        assert_eq!(r.steps, 8);
        // 800k edges over 9ms = ~88.9 MTEPS.
        assert!(
            (r.measured_mteps - 88.9).abs() < 0.5,
            "{}",
            r.measured_mteps
        );
        assert!(r.predicted_mteps > 0.0);
        let p1 = &r.phases[0];
        assert_eq!(p1.phase, "phase1");
        assert_eq!(p1.units, 800_000);
        // 800k units × bpe bytes over 4ms mean thread time.
        let expect = r.prediction.phase1_ddr_bpe * 800_000.0 / 4_000_000.0;
        assert!((p1.measured_gbps.unwrap() - expect).abs() < 1e-9);
        assert!(p1.predicted_gbps.unwrap() > 0.0);
        // Bottom-up rows carry the model-extension term; barrier has none.
        let bu = &r.phases[2];
        assert_eq!(bu.phase, "bottom_up");
        assert!((bu.model_bpe.unwrap() - r.prediction.bottom_up_bpe).abs() < 1e-12);
        assert!(bu.predicted_gbps.unwrap() > 0.0);
        assert!(r.phases[4].model_bpe.is_none());
        assert!(r.phases[4].measured_gbps.is_none());
        // No hw counters in the synthetic snapshot → hw columns absent.
        assert!(r.phases.iter().all(|p| p.hw_cycles.is_none()));
        assert!(r.dtlb_per_scatter.is_none());
        let share_sum: f64 = r.phases.iter().map(|p| p.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        // Even synthetic load → both sockets at 1.0.
        assert_eq!(r.sockets.len(), 2);
        assert!((r.sockets[0].imbalance - 1.0).abs() < 1e-9);
        assert!((r.thread_imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn steps_attribute_only_with_scatter_counts() {
        let m = MachineSpec::xeon_x5570_1s();
        let snap = synthetic_snapshot();
        let events = vec![
            bfs_trace::TraceEvent::Step(StepEvent {
                step: 1,
                frontier: 100,
                direction: Some("top-down".into()),
                threads: vec![ThreadStep {
                    thread: 0,
                    phase1_ns: 10_000,
                    phase2_ns: 5_000,
                    ..Default::default()
                }],
                scattered: Some(1_000),
                ..Default::default()
            }),
            bfs_trace::TraceEvent::Step(StepEvent {
                step: 2,
                frontier: 4_000,
                direction: Some("bottom-up".into()),
                scattered: None,
                ..Default::default()
            }),
        ];
        let r = AttributionReport::build(&snap, &events, &ctx(&m));
        assert_eq!(r.step_detail.len(), 2);
        let td = &r.step_detail[0];
        assert_eq!(td.latency_ns, 15_000);
        assert!(td.measured_gbps.unwrap() > 0.0);
        assert!(td.predicted_gbps.unwrap() > 0.0);
        let bu = &r.step_detail[1];
        assert!(bu.measured_gbps.is_none());
        assert!(bu.predicted_gbps.is_none());
        let text = r.render_text(&snap);
        assert!(text.contains("phase1"), "{text}");
        assert!(text.contains("top-down"), "{text}");
    }

    #[test]
    fn hw_counters_populate_phase_rows_and_dtlb_rate() {
        let m = MachineSpec::xeon_x5570_2s();
        let mut reg = MetricsRegistry::new(2);
        for t in 0..2 {
            let mut w = reg.writer(t);
            w.add(Counter::Phase1Ns, 4_000_000);
            w.add(Counter::ScatteredEdges, 400_000);
            w.add(Counter::Phase1HwCycles, 10_000_000);
            w.add(Counter::Phase1HwInstructions, 8_000_000);
            w.add(Counter::Phase1LlcMisses, 50_000);
            w.add(Counter::Phase1DtlbMisses, 2_000);
        }
        {
            let mut d = reg.driver();
            d.add(Counter::Queries, 1);
            d.add(Counter::QueryNs, 9_000_000);
            d.add(Counter::Steps, 8);
            d.add(Counter::VisitedVertices, 120_000);
            d.add(Counter::TraversedEdges, 800_000);
        }
        let snap = reg.snapshot();
        let r = AttributionReport::build(&snap, &[], &ctx(&m));
        let p1 = &r.phases[0];
        assert_eq!(p1.hw_cycles, Some(20_000_000));
        assert_eq!(p1.hw_instructions, Some(16_000_000));
        assert_eq!(p1.hw_llc_misses, Some(100_000));
        assert_eq!(p1.hw_dtlb_misses, Some(4_000));
        // 100k misses × 64 B over 4 ms mean per-thread time.
        let expect = 100_000.0 * 64.0 / 4_000_000.0;
        assert!((p1.hw_gbps.unwrap() - expect).abs() < 1e-9);
        // 100k misses × 64 B over 800k scattered neighbors = 8 B/edge,
        // directly comparable to model_bpe on the same row.
        assert!(
            (p1.measured_bpe.unwrap() - 8.0).abs() < 1e-9,
            "{:?}",
            p1.measured_bpe
        );
        assert!(p1.model_bpe.is_some());
        // 4k misses over 800k scattered neighbors.
        assert!((r.dtlb_per_scatter.unwrap() - 0.005).abs() < 1e-12);
        // Phases that never ran with counters still carry Some(0) — the
        // block as a whole was measured; barrier stays None.
        assert_eq!(r.phases[1].hw_cycles, Some(0));
        assert!(r.phases[4].hw_cycles.is_none());
        let text = r.render_text(&snap);
        assert!(text.contains("hw_cycles"), "{text}");
        assert!(text.contains("dTLB/scattered entry"), "{text}");
        assert!(!text.contains("hw: unavailable"), "{text}");
    }

    #[test]
    fn unavailable_reason_is_surfaced_not_mistaken_for_zero() {
        let m = MachineSpec::xeon_x5570_2s();
        let snap = synthetic_snapshot();
        let mut c = ctx(&m);
        c.hw_unavailable = Some("PMU not available on this host".into());
        let r = AttributionReport::build(&snap, &[], &c);
        assert!(r.phases.iter().all(|p| p.hw_cycles.is_none()));
        let text = r.render_text(&snap);
        assert!(
            text.contains("hw: unavailable (PMU not available on this host)"),
            "{text}"
        );
        assert!(!text.contains("hw_cycles"), "{text}");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let m = MachineSpec::xeon_x5570_2s();
        let snap = synthetic_snapshot();
        let r = AttributionReport::build(&snap, &[], &ctx(&m));
        let s = serde_json::to_string(&r).unwrap();
        let back: AttributionReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back.queries, r.queries);
        assert_eq!(back.phases.len(), r.phases.len());
        assert!((back.model_ratio - r.model_ratio).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one recorded query")]
    fn empty_snapshot_is_rejected() {
        let m = MachineSpec::xeon_x5570_2s();
        let mut reg = MetricsRegistry::new(1);
        let snap = reg.snapshot();
        let _ = AttributionReport::build(&snap, &[], &ctx(&m));
    }
}
