//! The sharded registry: fixed counter and histogram vocabularies, one
//! cache-line-padded slot per engine thread plus one driver slot.
//!
//! Hot-path cost model: [`MetricsWriter::add`] is one indexed add on a
//! plain `u64` behind a raw pointer — no atomics, no branches beyond the
//! bounds check the fixed enum erases, no allocation ever.
//! [`MetricsWriter::observe`] is a leading-zeros bucket index plus three
//! plain adds. Slots are padded to 128 bytes
//! ([`bfs_platform::CachePadded`]) so two threads' increments never share
//! a line pair. Aggregation ([`MetricsRegistry::snapshot`]) takes
//! `&mut self`: exclusive access proves no SPMD region is live, so the
//! merge reads need no synchronization — the pool's finish barrier already
//! published every worker write.

use bfs_platform::padded::SlotGuard;
use bfs_platform::PerThreadSlots;

/// Number of counters in the fixed vocabulary.
pub const NUM_COUNTERS: usize = Counter::ALL.len();

/// Number of histograms in the fixed vocabulary.
pub const NUM_HISTS: usize = Hist::ALL.len();

/// Power-of-two histogram buckets: bucket `i` holds values `v` with
/// `bit_length(v) == i` (bucket 0 holds exactly 0), i.e. upper bound
/// `2^i - 1`. 44 buckets cover nanosecond values up to ~2.4 hours and
/// frontier sizes up to 2^43.
pub const HIST_BUCKETS: usize = 44;

/// The counter vocabulary. Driver-scope counters (query/step/traversal
/// totals) are bumped once per query by the calling thread; thread-scope
/// counters (per-phase time and traffic) are bumped by each worker at
/// region exit from its private accumulators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Queries served (driver scope).
    Queries,
    /// Total query wall-clock nanoseconds (driver scope).
    QueryNs,
    /// BFS steps executed (driver scope).
    Steps,
    /// Steps that ran the top-down kernel (driver scope).
    TopDownSteps,
    /// Steps that ran the bottom-up kernel (driver scope).
    BottomUpSteps,
    /// Per-level direction changes (driver scope).
    DirectionSwitches,
    /// Vertices visited across queries (driver scope).
    VisitedVertices,
    /// Edges traversed across queries (driver scope).
    TraversedEdges,
    /// Benign-race duplicate enqueues (driver scope).
    DuplicateEnqueues,
    /// Phase I scatter nanoseconds (thread scope).
    Phase1Ns,
    /// Phase II bin-walk nanoseconds, top-down levels only (thread scope).
    Phase2Ns,
    /// Bottom-up probe-scan nanoseconds (thread scope).
    BottomUpNs,
    /// Frontier rearrangement nanoseconds (thread scope).
    RearrangeNs,
    /// Nanoseconds spent waiting at step barriers (thread scope).
    BarrierNs,
    /// Neighbors scattered into PBV bins in Phase I (thread scope).
    ScatteredEdges,
    /// `(parent, v)` entries decoded from bins in Phase II (thread scope).
    BinEntries,
    /// Bottom-up neighbor probes (thread scope).
    EdgeChecks,
    /// Successful DP claims, duplicates included (thread scope).
    Enqueued,
    /// SIMD bin-index kernel operations (thread scope).
    BinningOps,
    /// Hardware CPU cycles retired during Phase I (thread scope; zero
    /// when perf counters are unavailable — see `bfs-perf`).
    Phase1HwCycles,
    /// Hardware instructions retired during Phase I (thread scope).
    Phase1HwInstructions,
    /// LLC load misses during Phase I (thread scope). Each miss is one
    /// cache line of measured DDR read traffic.
    Phase1LlcMisses,
    /// dTLB load misses during Phase I (thread scope).
    Phase1DtlbMisses,
    /// Hardware CPU cycles retired during Phase II (thread scope).
    Phase2HwCycles,
    /// Hardware instructions retired during Phase II (thread scope).
    Phase2HwInstructions,
    /// LLC load misses during Phase II (thread scope).
    Phase2LlcMisses,
    /// dTLB load misses during Phase II (thread scope).
    Phase2DtlbMisses,
    /// Hardware CPU cycles retired during bottom-up scans (thread scope).
    BottomUpHwCycles,
    /// Hardware instructions retired during bottom-up scans (thread scope).
    BottomUpHwInstructions,
    /// LLC load misses during bottom-up scans (thread scope).
    BottomUpLlcMisses,
    /// dTLB load misses during bottom-up scans (thread scope).
    BottomUpDtlbMisses,
    /// Hardware CPU cycles retired during rearrangement (thread scope).
    RearrangeHwCycles,
    /// Hardware instructions retired during rearrangement (thread scope).
    RearrangeHwInstructions,
    /// LLC load misses during rearrangement (thread scope).
    RearrangeLlcMisses,
    /// dTLB load misses during rearrangement (thread scope).
    RearrangeDtlbMisses,
    /// Query-path HTTP requests admitted by `fastbfs serve` (driver scope;
    /// the dispatch thread is the single writer for all `Serve*` counters).
    ServeRequests,
    /// Query-path requests that failed — malformed parameters, out-of-range
    /// vertices, or a full admission queue (driver scope).
    ServeErrors,
    /// Nanoseconds spent parsing request lines and parameters (driver scope).
    ServeParseNs,
    /// Nanoseconds requests waited in the admission queue before the
    /// dispatch thread picked them up (driver scope).
    ServeQueueNs,
    /// Nanoseconds executing traversals on behalf of requests (driver scope).
    ServeExecNs,
    /// Nanoseconds serializing response bodies (driver scope).
    ServeSerializeNs,
    /// Waves that coalesced two or more queued single-source requests
    /// into one batched dispatch (driver scope; per-session dispatcher).
    ServeCoalescedWaves,
    /// Requests served as part of a coalesced (multi-request) wave
    /// (driver scope; per-session dispatcher).
    ServeCoalescedRequests,
    /// Requests answered 504 because their deadline passed while queued —
    /// dropped without ever executing (driver scope; per-session
    /// dispatcher).
    ServeDeadlineDropped,
    /// Requests whose flight-recorder trace the tail sampler kept in
    /// full — slow, errored, or deadline-dropped (driver scope; worker-
    /// side error traces drain through the dispatcher like
    /// `ServeErrors`).
    ServeTraceSampled,
    /// Requests retained as an id+latency digest only — fast, successful
    /// requests the tail sampler declined (driver scope).
    ServeTraceDigest,
}

impl Counter {
    /// Every counter, in stable index order (`c as usize` indexes this).
    /// Additions are append-only so snapshots serialized by older builds
    /// keep their positional meaning.
    pub const ALL: [Counter; 46] = [
        Counter::Queries,
        Counter::QueryNs,
        Counter::Steps,
        Counter::TopDownSteps,
        Counter::BottomUpSteps,
        Counter::DirectionSwitches,
        Counter::VisitedVertices,
        Counter::TraversedEdges,
        Counter::DuplicateEnqueues,
        Counter::Phase1Ns,
        Counter::Phase2Ns,
        Counter::BottomUpNs,
        Counter::RearrangeNs,
        Counter::BarrierNs,
        Counter::ScatteredEdges,
        Counter::BinEntries,
        Counter::EdgeChecks,
        Counter::Enqueued,
        Counter::BinningOps,
        Counter::Phase1HwCycles,
        Counter::Phase1HwInstructions,
        Counter::Phase1LlcMisses,
        Counter::Phase1DtlbMisses,
        Counter::Phase2HwCycles,
        Counter::Phase2HwInstructions,
        Counter::Phase2LlcMisses,
        Counter::Phase2DtlbMisses,
        Counter::BottomUpHwCycles,
        Counter::BottomUpHwInstructions,
        Counter::BottomUpLlcMisses,
        Counter::BottomUpDtlbMisses,
        Counter::RearrangeHwCycles,
        Counter::RearrangeHwInstructions,
        Counter::RearrangeLlcMisses,
        Counter::RearrangeDtlbMisses,
        Counter::ServeRequests,
        Counter::ServeErrors,
        Counter::ServeParseNs,
        Counter::ServeQueueNs,
        Counter::ServeExecNs,
        Counter::ServeSerializeNs,
        Counter::ServeCoalescedWaves,
        Counter::ServeCoalescedRequests,
        Counter::ServeDeadlineDropped,
        Counter::ServeTraceSampled,
        Counter::ServeTraceDigest,
    ];

    /// Stable snake_case name used in JSON and Prometheus exposition.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Queries => "queries",
            Counter::QueryNs => "query_ns",
            Counter::Steps => "steps",
            Counter::TopDownSteps => "top_down_steps",
            Counter::BottomUpSteps => "bottom_up_steps",
            Counter::DirectionSwitches => "direction_switches",
            Counter::VisitedVertices => "visited_vertices",
            Counter::TraversedEdges => "traversed_edges",
            Counter::DuplicateEnqueues => "duplicate_enqueues",
            Counter::Phase1Ns => "phase1_ns",
            Counter::Phase2Ns => "phase2_ns",
            Counter::BottomUpNs => "bottom_up_ns",
            Counter::RearrangeNs => "rearrange_ns",
            Counter::BarrierNs => "barrier_ns",
            Counter::ScatteredEdges => "scattered_edges",
            Counter::BinEntries => "bin_entries",
            Counter::EdgeChecks => "edge_checks",
            Counter::Enqueued => "enqueued",
            Counter::BinningOps => "binning_ops",
            Counter::Phase1HwCycles => "phase1_hw_cycles",
            Counter::Phase1HwInstructions => "phase1_hw_instructions",
            Counter::Phase1LlcMisses => "phase1_llc_misses",
            Counter::Phase1DtlbMisses => "phase1_dtlb_misses",
            Counter::Phase2HwCycles => "phase2_hw_cycles",
            Counter::Phase2HwInstructions => "phase2_hw_instructions",
            Counter::Phase2LlcMisses => "phase2_llc_misses",
            Counter::Phase2DtlbMisses => "phase2_dtlb_misses",
            Counter::BottomUpHwCycles => "bottom_up_hw_cycles",
            Counter::BottomUpHwInstructions => "bottom_up_hw_instructions",
            Counter::BottomUpLlcMisses => "bottom_up_llc_misses",
            Counter::BottomUpDtlbMisses => "bottom_up_dtlb_misses",
            Counter::RearrangeHwCycles => "rearrange_hw_cycles",
            Counter::RearrangeHwInstructions => "rearrange_hw_instructions",
            Counter::RearrangeLlcMisses => "rearrange_llc_misses",
            Counter::RearrangeDtlbMisses => "rearrange_dtlb_misses",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeErrors => "serve_errors",
            Counter::ServeParseNs => "serve_parse_ns",
            Counter::ServeQueueNs => "serve_queue_ns",
            Counter::ServeExecNs => "serve_exec_ns",
            Counter::ServeSerializeNs => "serve_serialize_ns",
            Counter::ServeCoalescedWaves => "serve_coalesced_waves",
            Counter::ServeCoalescedRequests => "serve_coalesced_requests",
            Counter::ServeDeadlineDropped => "serve_deadline_dropped",
            Counter::ServeTraceSampled => "serve_trace_sampled",
            Counter::ServeTraceDigest => "serve_trace_digest",
        }
    }

    /// The four hardware counters for one engine phase, in
    /// `bfs-perf::ENGINE_EVENTS` order (cycles, instructions, LLC load
    /// misses, dTLB load misses). Phase index: 0 = Phase I, 1 = Phase II,
    /// 2 = bottom-up, 3 = rearrangement.
    pub const HW_BY_PHASE: [[Counter; 4]; 4] = [
        [
            Counter::Phase1HwCycles,
            Counter::Phase1HwInstructions,
            Counter::Phase1LlcMisses,
            Counter::Phase1DtlbMisses,
        ],
        [
            Counter::Phase2HwCycles,
            Counter::Phase2HwInstructions,
            Counter::Phase2LlcMisses,
            Counter::Phase2DtlbMisses,
        ],
        [
            Counter::BottomUpHwCycles,
            Counter::BottomUpHwInstructions,
            Counter::BottomUpLlcMisses,
            Counter::BottomUpDtlbMisses,
        ],
        [
            Counter::RearrangeHwCycles,
            Counter::RearrangeHwInstructions,
            Counter::RearrangeLlcMisses,
            Counter::RearrangeDtlbMisses,
        ],
    ];
}

/// The histogram vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Per-thread busy nanoseconds per step (phases + rearrangement).
    StepNs,
    /// Query wall-clock nanoseconds (driver scope).
    QueryNs,
    /// Per-step frontier size, enqueues with duplicates (driver scope).
    FrontierSize,
    /// Admission-queue wait per query-path request in nanoseconds (driver
    /// scope; `fastbfs serve` dispatch thread).
    ServeQueueNs,
    /// End-to-end request lifecycle (arrival to response ready) in
    /// nanoseconds (driver scope; `fastbfs serve` dispatch thread).
    ServeRequestNs,
}

impl Hist {
    /// Every histogram, in stable index order (append-only).
    pub const ALL: [Hist; 5] = [
        Hist::StepNs,
        Hist::QueryNs,
        Hist::FrontierSize,
        Hist::ServeQueueNs,
        Hist::ServeRequestNs,
    ];

    /// Stable snake_case name used in JSON and Prometheus exposition.
    pub fn name(self) -> &'static str {
        match self {
            Hist::StepNs => "step_ns",
            Hist::QueryNs => "query_ns",
            Hist::FrontierSize => "frontier_size",
            Hist::ServeQueueNs => "serve_queue_ns",
            Hist::ServeRequestNs => "serve_request_ns",
        }
    }
}

/// Bucket index of `v`: its bit length, clamped to the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`); the last bucket is
/// unbounded and reported as `u64::MAX`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// One slot's worth of raw metric storage. Fixed-size arrays only: a
/// writer never allocates.
pub(crate) struct SlotData {
    pub(crate) counters: [u64; NUM_COUNTERS],
    pub(crate) buckets: [[u64; HIST_BUCKETS]; NUM_HISTS],
    pub(crate) hist_count: [u64; NUM_HISTS],
    pub(crate) hist_sum: [u64; NUM_HISTS],
}

impl SlotData {
    fn zeroed() -> Self {
        Self {
            counters: [0; NUM_COUNTERS],
            buckets: [[0; HIST_BUCKETS]; NUM_HISTS],
            hist_count: [0; NUM_HISTS],
            hist_sum: [0; NUM_HISTS],
        }
    }

    fn clear(&mut self) {
        *self = Self::zeroed();
    }
}

/// The always-on registry: `workers + 1` padded slots — one per pool
/// thread, plus a driver slot for the query-scope counters the calling
/// thread records after the region finishes.
pub struct MetricsRegistry {
    slots: PerThreadSlots<SlotData>,
    workers: usize,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("workers", &self.workers)
            .finish()
    }
}

impl MetricsRegistry {
    /// Registry for a pool of `workers` threads.
    pub fn new(workers: usize) -> Self {
        Self {
            slots: PerThreadSlots::from_fn(workers + 1, |_| SlotData::zeroed()),
            workers,
        }
    }

    /// Number of worker slots (the driver slot is extra).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Takes worker thread `tid`'s slot for the duration of a region.
    /// The caller must be that thread (single-writer discipline; debug
    /// builds panic on a double take).
    #[inline]
    pub fn writer(&self, tid: usize) -> MetricsWriter<'_> {
        assert!(tid < self.workers, "thread {tid} out of {}", self.workers);
        MetricsWriter {
            slot: self.slots.take(tid),
        }
    }

    /// Takes the driver slot (for the thread that called the region).
    #[inline]
    pub fn driver(&self) -> MetricsWriter<'_> {
        MetricsWriter {
            slot: self.slots.take(self.workers),
        }
    }

    /// Zeroes every slot.
    pub fn reset(&mut self) {
        for s in self.slots.iter_mut() {
            s.clear();
        }
    }

    /// Merges all slots into a serializable snapshot. `&mut self` proves
    /// quiescence (no region in flight, no live writer).
    pub fn snapshot(&mut self) -> crate::snapshot::MetricsSnapshot {
        crate::snapshot::MetricsSnapshot::collect(&mut self.slots, self.workers)
    }
}

/// Exclusive, allocation-free write handle to one slot.
pub struct MetricsWriter<'a> {
    slot: SlotGuard<'a, SlotData>,
}

impl MetricsWriter<'_> {
    /// Adds `v` to counter `c`: one plain indexed `u64` add.
    #[inline]
    pub fn add(&mut self, c: Counter, v: u64) {
        self.slot.counters[c as usize] += v;
    }

    /// Records one observation `v` into histogram `h`.
    #[inline]
    pub fn observe(&mut self, h: Hist, v: u64) {
        let hi = h as usize;
        self.slot.buckets[hi][bucket_index(v)] += 1;
        self.slot.hist_count[hi] += 1;
        self.slot.hist_sum[hi] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_align_with_indices() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?}");
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i, "{h:?}");
        }
    }

    #[test]
    fn bucket_geometry() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn writers_accumulate_into_distinct_slots() {
        let reg = MetricsRegistry::new(2);
        {
            let mut w0 = reg.writer(0);
            let mut w1 = reg.writer(1);
            w0.add(Counter::Enqueued, 5);
            w1.add(Counter::Enqueued, 7);
            w1.observe(Hist::StepNs, 100);
        }
        let mut d = reg.driver();
        d.add(Counter::Queries, 1);
        drop(d);
        let mut reg = reg;
        let snap = reg.snapshot();
        assert_eq!(snap.total(Counter::Enqueued), 12);
        assert_eq!(snap.total(Counter::Queries), 1);
        assert_eq!(snap.histogram(Hist::StepNs).count, 1);
        reg.reset();
        assert_eq!(reg.snapshot().total(Counter::Enqueued), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn writer_rejects_driver_index() {
        let reg = MetricsRegistry::new(2);
        let _ = reg.writer(2);
    }
}
