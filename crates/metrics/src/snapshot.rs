//! Point-in-time, serializable view of a registry: aggregated counters,
//! per-thread counter rows (for load-imbalance analysis), and merged
//! histograms with power-of-two buckets.

use serde::{Deserialize, Serialize};

use crate::registry::{
    bucket_upper_bound, Counter, Hist, SlotData, HIST_BUCKETS, NUM_COUNTERS, NUM_HISTS,
};
use bfs_platform::PerThreadSlots;

/// One named counter total.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Stable counter name ([`Counter::name`]).
    pub name: String,
    /// Summed value across every slot.
    pub value: u64,
}

/// One worker thread's raw counter row, aligned with the snapshot's
/// `counters` order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThreadCounters {
    /// Pool thread id.
    pub thread: usize,
    /// Counter values in [`Counter::ALL`] order.
    pub values: Vec<u64>,
}

/// One merged histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Stable histogram name ([`Hist::name`]).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts; bucket `i` holds values with bit
    /// length `i` (inclusive upper bound `2^i - 1`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Bucket-interpolated quantile (`q` in `0.0..=1.0`): walks the
    /// cumulative counts to the target rank and interpolates linearly
    /// inside the landing bucket. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if next as f64 >= target {
                let lower = if i == 0 {
                    0
                } else {
                    bucket_upper_bound(i - 1) + 1
                };
                let upper = bucket_upper_bound(i).min(self.sum);
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - cum as f64) / c as f64
                };
                return lower as f64 + frac * (upper.saturating_sub(lower)) as f64;
            }
            cum = next;
        }
        bucket_upper_bound(HIST_BUCKETS - 1) as f64
    }

    /// Mean observed value; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The full registry view. Aggregates include the driver slot; the
/// `per_thread` rows cover worker slots only (the driver slot holds no
/// thread-scope counters).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Worker slots merged (excludes the driver slot).
    pub workers: usize,
    /// Aggregated totals in [`Counter::ALL`] order.
    pub counters: Vec<CounterSample>,
    /// Raw per-worker counter rows.
    pub per_thread: Vec<ThreadCounters>,
    /// Merged histograms in [`Hist::ALL`] order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub(crate) fn collect(slots: &mut PerThreadSlots<SlotData>, workers: usize) -> Self {
        let mut totals = [0u64; NUM_COUNTERS];
        let mut buckets = [[0u64; HIST_BUCKETS]; NUM_HISTS];
        let mut hist_count = [0u64; NUM_HISTS];
        let mut hist_sum = [0u64; NUM_HISTS];
        let mut per_thread = Vec::with_capacity(workers);
        for (i, s) in slots.iter_mut().enumerate() {
            for (t, v) in totals.iter_mut().zip(s.counters.iter()) {
                *t += v;
            }
            for h in 0..NUM_HISTS {
                for (b, v) in buckets[h].iter_mut().zip(s.buckets[h].iter()) {
                    *b += v;
                }
                hist_count[h] += s.hist_count[h];
                hist_sum[h] += s.hist_sum[h];
            }
            if i < workers {
                per_thread.push(ThreadCounters {
                    thread: i,
                    values: s.counters.to_vec(),
                });
            }
        }
        MetricsSnapshot {
            workers,
            counters: Counter::ALL
                .iter()
                .map(|c| CounterSample {
                    name: c.name().to_string(),
                    value: totals[*c as usize],
                })
                .collect(),
            per_thread,
            histograms: Hist::ALL
                .iter()
                .map(|h| HistogramSnapshot {
                    name: h.name().to_string(),
                    count: hist_count[*h as usize],
                    sum: hist_sum[*h as usize],
                    buckets: buckets[*h as usize].to_vec(),
                })
                .collect(),
        }
    }

    /// Folds `other` into `self`: counter totals and histograms sum, and
    /// `other`'s per-thread rows are appended with their thread ids
    /// shifted past `self`'s workers so every row stays distinct. This is
    /// how a multi-session server presents one fleet-wide exposition from
    /// per-session registries: counters from the same build share the
    /// vocabulary, so positional summing is exact.
    ///
    /// # Panics
    /// Panics if the two snapshots disagree on counter or histogram
    /// vocabulary (different builds).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        assert_eq!(
            self.counters.len(),
            other.counters.len(),
            "snapshot counter vocabularies differ"
        );
        assert_eq!(
            self.histograms.len(),
            other.histograms.len(),
            "snapshot histogram vocabularies differ"
        );
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            debug_assert_eq!(a.name, b.name);
            a.value += b.value;
        }
        for (a, b) in self.histograms.iter_mut().zip(other.histograms.iter()) {
            debug_assert_eq!(a.name, b.name);
            a.count += b.count;
            a.sum += b.sum;
            for (x, y) in a.buckets.iter_mut().zip(b.buckets.iter()) {
                *x += y;
            }
        }
        let base = self.workers;
        self.per_thread.extend(other.per_thread.iter().map(|t| {
            let mut t = t.clone();
            t.thread += base;
            t
        }));
        self.workers += other.workers;
    }

    /// Aggregated total of one counter.
    pub fn total(&self, c: Counter) -> u64 {
        self.counters[c as usize].value
    }

    /// One worker's value of one counter.
    pub fn thread_total(&self, thread: usize, c: Counter) -> u64 {
        self.per_thread[thread].values[c as usize]
    }

    /// Per-socket sums of one counter, grouping worker threads into
    /// consecutive runs of `lanes_per_socket`.
    pub fn per_socket(&self, lanes_per_socket: usize, c: Counter) -> Vec<u64> {
        assert!(lanes_per_socket > 0);
        let sockets = self.workers.div_ceil(lanes_per_socket);
        let mut out = vec![0u64; sockets];
        for t in &self.per_thread {
            out[t.thread / lanes_per_socket] += t.values[c as usize];
        }
        out
    }

    /// One merged histogram.
    pub fn histogram(&self, h: Hist) -> &HistogramSnapshot {
        &self.histograms[h as usize]
    }

    /// Per-worker busy nanoseconds: phases + rearrangement (barrier wait
    /// excluded — that is the *idle* side of imbalance).
    pub fn thread_busy_ns(&self, thread: usize) -> u64 {
        self.thread_total(thread, Counter::Phase1Ns)
            + self.thread_total(thread, Counter::Phase2Ns)
            + self.thread_total(thread, Counter::BottomUpNs)
            + self.thread_total(thread, Counter::RearrangeNs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn filled() -> MetricsSnapshot {
        let reg = MetricsRegistry::new(4);
        for t in 0..4 {
            let mut w = reg.writer(t);
            w.add(Counter::Phase1Ns, (t as u64 + 1) * 100);
            w.add(Counter::ScatteredEdges, 50);
            w.observe(Hist::StepNs, 700 * (t as u64 + 1));
        }
        let mut d = reg.driver();
        d.add(Counter::Queries, 2);
        d.observe(Hist::QueryNs, 1 << 20);
        drop(d);
        let mut reg = reg;
        reg.snapshot()
    }

    #[test]
    fn totals_per_thread_and_per_socket_agree() {
        let s = filled();
        assert_eq!(s.total(Counter::Phase1Ns), 1000);
        assert_eq!(s.total(Counter::ScatteredEdges), 200);
        assert_eq!(s.total(Counter::Queries), 2);
        assert_eq!(s.per_thread.len(), 4);
        assert_eq!(s.thread_total(2, Counter::Phase1Ns), 300);
        assert_eq!(s.per_socket(2, Counter::Phase1Ns), vec![300, 700]);
        assert_eq!(s.thread_busy_ns(3), 400);
    }

    #[test]
    fn histograms_merge_and_quantile_is_monotone() {
        let s = filled();
        let h = s.histogram(Hist::StepNs);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 700 + 1400 + 2100 + 2800);
        assert!((h.mean() - 1750.0).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 > 0.0 && p50 <= p99, "p50 {p50} p99 {p99}");
        // All four values have bit length 10..=12, so quantiles stay in
        // that range's bucket bounds.
        assert!(p99 <= 4095.0, "p99 {p99}");
        assert_eq!(s.histogram(Hist::QueryNs).count, 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let mut reg = MetricsRegistry::new(1);
        let s = reg.snapshot();
        assert_eq!(s.histogram(Hist::StepNs).quantile(0.5), 0.0);
        assert_eq!(s.histogram(Hist::StepNs).mean(), 0.0);
    }

    #[test]
    fn merge_sums_totals_and_renumbers_threads() {
        let mut a = filled();
        let b = filled();
        a.merge(&b);
        assert_eq!(a.workers, 8);
        assert_eq!(a.total(Counter::Queries), 4);
        assert_eq!(a.total(Counter::Phase1Ns), 2000);
        assert_eq!(a.per_thread.len(), 8);
        // b's thread 0 landed at thread id 4 with its row intact.
        assert_eq!(a.thread_total(4, Counter::Phase1Ns), 100);
        let h = a.histogram(Hist::StepNs);
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 2 * (700 + 1400 + 2100 + 2800));
        // Merging an empty snapshot is the identity on totals.
        let mut reg = MetricsRegistry::new(1);
        let empty = reg.snapshot();
        let before = a.total(Counter::Queries);
        a.merge(&empty);
        assert_eq!(a.total(Counter::Queries), before);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let s = filled();
        let text = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
