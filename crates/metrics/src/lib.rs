//! Always-on metrics for the fast-bfs reproduction.
//!
//! The paper's performance argument is a *bandwidth* argument: §IV predicts
//! bytes-per-edge and cycles-per-edge for each phase of the two-phase
//! algorithm, and §V validates the implementation by showing the measured
//! numbers land within ~10% of those predictions. This crate makes that
//! comparison a first-class, always-on artifact instead of a one-off
//! experiment:
//!
//! * [`registry`] — the sharded [`MetricsRegistry`]: a fixed vocabulary of
//!   41 counters + 5 power-of-two histograms, stored in one
//!   cache-line-padded slot per engine thread (plus a driver slot). A
//!   hot-path increment is a plain unsynchronized `u64` add into the
//!   thread's own slot — no atomics, no locks, no allocation — which is
//!   what lets the engine leave metrics on for every query.
//! * [`snapshot`] — [`MetricsSnapshot`]: the merged, serializable view.
//!   Taking one requires `&mut MetricsRegistry`, so the type system proves
//!   no SPMD region is concurrently writing.
//! * [`attribution`] — [`AttributionReport`]: the model-vs-measured join.
//!   Measured per-phase busy time and work units are combined with the
//!   §IV bytes-per-edge terms into achieved GB/s per phase, side by side
//!   with the bandwidth the model says the phase should sustain; per-step
//!   rows (from a trace) and per-socket load splits localize the gaps.
//! * [`prom`] — Prometheus text exposition of a snapshot.
//!
//! Counter discipline: *thread-scope* counters (per-phase nanoseconds and
//! traffic units) are accumulated in each worker's private locals during a
//! query and flushed with a handful of [`MetricsWriter::add`] calls at
//! region exit; *driver-scope* counters (query/step/traversal totals) are
//! recorded once per query by the calling thread from the run's stats. The
//! per-step histogram observation happens per thread per step — still just
//! a few plain stores.

pub mod attribution;
pub mod prom;
pub mod registry;
pub mod rollup;
pub mod snapshot;

pub use attribution::{
    AttributionContext, AttributionReport, PhaseAttribution, SocketLoad, StepAttribution,
};
pub use registry::{Counter, Hist, MetricsRegistry, MetricsWriter};
pub use rollup::{
    HealthVerdict, RollupFrame, RollupRing, SloConfig, SloEval, SloState, WindowStats,
};
pub use snapshot::{CounterSample, HistogramSnapshot, MetricsSnapshot, ThreadCounters};

use bfs_trace::{HistSummarySample, MetricSample, MetricsEvent};

/// Converts a snapshot's aggregated counters and histogram summaries
/// into a trace event, so JSONL traces can carry the registry totals
/// (plus p50/p99 of each histogram) alongside the per-step timeline.
pub fn snapshot_to_trace_event(snap: &MetricsSnapshot, scope: &str) -> MetricsEvent {
    MetricsEvent {
        scope: scope.to_string(),
        samples: snap
            .counters
            .iter()
            .map(|c| MetricSample {
                name: c.name.clone(),
                value: c.value,
            })
            .collect(),
        hists: Some(
            snap.histograms
                .iter()
                .map(|h| HistSummarySample {
                    name: h.name.clone(),
                    count: h.count,
                    p50: h.quantile(0.5),
                    p99: h.quantile(0.99),
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_converts_to_trace_event() {
        let mut reg = MetricsRegistry::new(1);
        {
            let mut d = reg.driver();
            d.add(Counter::Queries, 4);
        }
        let ev = snapshot_to_trace_event(&reg.snapshot(), "session");
        assert_eq!(ev.scope, "session");
        assert_eq!(ev.samples.len(), registry::NUM_COUNTERS);
        let q = ev.samples.iter().find(|s| s.name == "queries").unwrap();
        assert_eq!(q.value, 4);
        let hists = ev.hists.as_ref().expect("histogram summaries attached");
        assert_eq!(hists.len(), registry::NUM_HISTS);
        assert!(hists.iter().any(|h| h.name == "step_ns"));
    }

    #[test]
    fn trace_event_hists_carry_quantiles() {
        let mut reg = MetricsRegistry::new(1);
        {
            let mut w = reg.writer(0);
            for v in [100u64, 200, 300, 400] {
                w.observe(Hist::StepNs, v);
            }
        }
        let snap = reg.snapshot();
        let ev = snapshot_to_trace_event(&snap, "run");
        let h = ev
            .hists
            .unwrap()
            .into_iter()
            .find(|h| h.name == "step_ns")
            .unwrap();
        assert_eq!(h.count, 4);
        assert!((h.p50 - snap.histogram(Hist::StepNs).quantile(0.5)).abs() < 1e-12);
        assert!(h.p50 > 0.0 && h.p50 <= h.p99);
    }
}
