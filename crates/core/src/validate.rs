//! Graph500-style BFS output validation.
//!
//! The paper claims its racy atomic-free protocol still yields "the correct
//! depth for all vertices, and a valid BFS tree". This module checks both
//! halves independently of any reference traversal:
//!
//! 1. the source has depth 0 and is its own parent;
//! 2. every reached non-source vertex has a parent that is reached, adjacent
//!    to it in the graph, and exactly one level shallower;
//! 3. depths never differ by more than 1 across any edge (the BFS frontier
//!    property, which also proves every reachable vertex was reached);
//! 4. unreached vertices have no parent.
//!
//! These are the Graph500 result-validation rules adapted to a
//! depth-and-parent output.

use bfs_graph::CsrGraph;

use crate::dp::INF_DEPTH;
use crate::VertexId;

/// A validation failure, with enough context to debug the traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Output arrays sized differently from the graph.
    WrongLength { expected: usize, got: usize },
    /// Source depth or parent is wrong.
    BadSource { depth: u32, parent: VertexId },
    /// A vertex has a depth but no valid parent.
    BadParent {
        vertex: VertexId,
        parent: VertexId,
        reason: &'static str,
    },
    /// depth(child) != depth(parent) + 1.
    BadParentDepth {
        vertex: VertexId,
        depth: u32,
        parent_depth: u32,
    },
    /// An edge connects depths differing by more than 1 (some vertex was
    /// reachable earlier than its assigned depth, or was never reached).
    EdgeDepthGap {
        u: VertexId,
        v: VertexId,
        du: u32,
        dv: u32,
    },
    /// An unreached vertex has a parent assigned.
    GhostParent { vertex: VertexId },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ValidationError {}

/// Validates `(depths, parents)` as a BFS forest rooted at `source`.
pub fn validate_bfs_tree(
    graph: &CsrGraph,
    source: VertexId,
    depths: &[u32],
    parents: &[VertexId],
) -> Result<(), ValidationError> {
    let n = graph.num_vertices();
    if depths.len() != n || parents.len() != n {
        return Err(ValidationError::WrongLength {
            expected: n,
            got: depths.len().min(parents.len()),
        });
    }
    if depths[source as usize] != 0 || parents[source as usize] != source {
        return Err(ValidationError::BadSource {
            depth: depths[source as usize],
            parent: parents[source as usize],
        });
    }
    for v in 0..n as VertexId {
        let d = depths[v as usize];
        if d == INF_DEPTH {
            if parents[v as usize] != VertexId::MAX {
                return Err(ValidationError::GhostParent { vertex: v });
            }
            continue;
        }
        if v != source {
            let p = parents[v as usize];
            if p == VertexId::MAX || p as usize >= n {
                return Err(ValidationError::BadParent {
                    vertex: v,
                    parent: p,
                    reason: "missing or out of range",
                });
            }
            // Parent must be adjacent: edge (p, v) must exist.
            if !graph.neighbors(p).contains(&v) {
                return Err(ValidationError::BadParent {
                    vertex: v,
                    parent: p,
                    reason: "no edge from parent",
                });
            }
            let pd = depths[p as usize];
            if pd == INF_DEPTH || pd + 1 != d {
                return Err(ValidationError::BadParentDepth {
                    vertex: v,
                    depth: d,
                    parent_depth: pd,
                });
            }
        }
    }
    // Frontier property over every edge (also catches unreached-but-
    // reachable vertices: an edge from depth d to INF fails).
    for (u, v) in graph.edges() {
        let (du, dv) = (depths[u as usize], depths[v as usize]);
        match (du == INF_DEPTH, dv == INF_DEPTH) {
            (true, true) => {}
            (false, false) => {
                if du.abs_diff(dv) > 1 {
                    return Err(ValidationError::EdgeDepthGap { u, v, du, dv });
                }
            }
            _ => return Err(ValidationError::EdgeDepthGap { u, v, du, dv }),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use bfs_graph::gen::classic::{path, star, two_cliques};
    use bfs_graph::gen::rmat::{rmat, RmatConfig};
    use bfs_graph::rng::rng_from_seed;

    #[test]
    fn serial_output_validates() {
        for g in [path(10), star(7), two_cliques(4, 3)] {
            let r = serial_bfs(&g, 0);
            validate_bfs_tree(&g, 0, &r.depths, &r.parents).unwrap();
        }
        let g = rmat(&RmatConfig::paper(10, 8), &mut rng_from_seed(1));
        let src = bfs_graph::stats::nth_non_isolated(&g, 0).unwrap();
        let r = serial_bfs(&g, src);
        validate_bfs_tree(&g, src, &r.depths, &r.parents).unwrap();
    }

    #[test]
    fn detects_wrong_source() {
        let g = path(3);
        let err = validate_bfs_tree(&g, 0, &[1, 1, 2], &[0, 0, 1]).unwrap_err();
        assert!(matches!(err, ValidationError::BadSource { .. }));
    }

    #[test]
    fn detects_non_edge_parent() {
        let g = path(4); // 0-1-2-3
                         // claim parent(3) = 0, which is not adjacent.
        let err = validate_bfs_tree(&g, 0, &[0, 1, 2, 1], &[0, 0, 1, 0]).unwrap_err();
        assert!(matches!(err, ValidationError::BadParent { vertex: 3, .. }));
    }

    #[test]
    fn detects_depth_gap_across_edge() {
        let g = path(4);
        // depth(2) wrong: 5 instead of 2.
        let err = validate_bfs_tree(&g, 0, &[0, 1, 5, 3], &[0, 0, 1, 2]).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::BadParentDepth { .. } | ValidationError::EdgeDepthGap { .. }
        ));
    }

    #[test]
    fn detects_unreached_but_reachable() {
        let g = path(3);
        let err = validate_bfs_tree(&g, 0, &[0, 1, INF_DEPTH], &[0, 0, VertexId::MAX]).unwrap_err();
        assert!(matches!(err, ValidationError::EdgeDepthGap { .. }));
    }

    #[test]
    fn detects_ghost_parent() {
        let g = two_cliques(2, 2);
        let err = validate_bfs_tree(
            &g,
            0,
            &[0, 1, INF_DEPTH, INF_DEPTH],
            &[0, 0, 1, VertexId::MAX],
        )
        .unwrap_err();
        assert!(matches!(err, ValidationError::GhostParent { vertex: 2 }));
    }

    #[test]
    fn detects_wrong_length() {
        let g = path(3);
        let err = validate_bfs_tree(&g, 0, &[0, 1], &[0, 0]).unwrap_err();
        assert!(matches!(err, ValidationError::WrongLength { .. }));
    }

    #[test]
    fn alternative_valid_parents_accepted() {
        // A diamond: 0-1, 0-2, 1-3, 2-3. Both 1 and 2 are valid parents of 3.
        let g = bfs_graph::CsrGraph::from_parts(vec![0, 2, 4, 6, 8], vec![1, 2, 0, 3, 0, 3, 1, 2]);
        for p3 in [1u32, 2] {
            validate_bfs_tree(&g, 0, &[0, 1, 1, 2], &[0, 0, 0, p3]).unwrap();
        }
    }
}
