//! Bin-index kernels: scalar and SIMD (§III-C(4)).
//!
//! The bin of a neighbor is `v >> bin_shift` — a single shift because bin
//! widths are powers of two (see [`crate::pbv::BinGeometry`]). The paper
//! computes "the bin index of 4 simultaneous neighbors together using SSE
//! instructions" and reports a 1.3–2× instruction reduction for the binning
//! loop. Both kernels are provided; they produce bit-identical indices, and
//! each counts a software *instruction proxy* (kernel operations executed)
//! so the ablation harness can report the reduction without hardware
//! counters.

/// Which kernel to use for binning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BinKernel {
    /// One shift per neighbor.
    Scalar,
    /// Four shifts at a time via SSE2 on x86-64 (scalar fallback elsewhere).
    #[default]
    Simd,
}

impl BinKernel {
    /// True if the SIMD path actually runs vectorized on this build target.
    pub fn is_vectorized(&self) -> bool {
        matches!(self, BinKernel::Simd) && cfg!(target_arch = "x86_64")
    }
}

/// Computes `out[i] = neighbors[i] >> shift` for all neighbors, returning
/// the number of proxy instructions executed.
pub fn bin_indices(kernel: BinKernel, neighbors: &[u32], shift: u32, out: &mut Vec<u32>) -> u64 {
    out.clear();
    out.reserve(neighbors.len());
    match kernel {
        BinKernel::Scalar => bin_indices_scalar(neighbors, shift, out),
        BinKernel::Simd => bin_indices_simd(neighbors, shift, out),
    }
}

/// Scalar kernel: per neighbor, one load, one shift, one store → 3 proxy
/// instructions.
fn bin_indices_scalar(neighbors: &[u32], shift: u32, out: &mut Vec<u32>) -> u64 {
    for &v in neighbors {
        out.push(v >> shift);
    }
    3 * neighbors.len() as u64
}

/// SIMD kernel: per 4 neighbors, one packed load, one packed shift, one
/// packed store → 3 proxy instructions per 4 lanes, plus the scalar tail.
#[cfg(target_arch = "x86_64")]
fn bin_indices_simd(neighbors: &[u32], shift: u32, out: &mut Vec<u32>) -> u64 {
    // SSE2 is part of the x86-64 baseline; no runtime detection needed.
    // SAFETY: sse2 is statically available on x86_64.
    unsafe { bin_indices_sse2(neighbors, shift, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn bin_indices_sse2(neighbors: &[u32], shift: u32, out: &mut Vec<u32>) -> u64 {
    use std::arch::x86_64::*;
    let chunks = neighbors.chunks_exact(4);
    let tail = chunks.remainder();
    let mut ops = 0u64;
    let count = _mm_cvtsi32_si128(shift as i32);
    for c in chunks {
        // SAFETY: `c` is 4 u32s; unaligned load/store intrinsics are used.
        let v = unsafe { _mm_loadu_si128(c.as_ptr() as *const __m128i) };
        let b = _mm_srl_epi32(v, count);
        let mut lanes = [0u32; 4];
        unsafe { _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, b) };
        out.extend_from_slice(&lanes);
        ops += 3;
    }
    ops + bin_indices_scalar(tail, shift, out)
}

/// Non-x86 fallback: identical results, scalar cost.
#[cfg(not(target_arch = "x86_64"))]
fn bin_indices_simd(neighbors: &[u32], shift: u32, out: &mut Vec<u32>) -> u64 {
    bin_indices_scalar(neighbors, shift, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(neighbors: &[u32], shift: u32) -> Vec<u32> {
        neighbors.iter().map(|&v| v >> shift).collect()
    }

    #[test]
    fn scalar_matches_reference() {
        let n: Vec<u32> = (0..97u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % (1 << 24))
            .collect();
        let mut out = Vec::new();
        bin_indices(BinKernel::Scalar, &n, 13, &mut out);
        assert_eq!(out, reference(&n, 13));
    }

    #[test]
    fn simd_matches_scalar_bit_for_bit() {
        for len in [0usize, 1, 3, 4, 5, 16, 63, 64, 1000] {
            let n: Vec<u32> = (0..len as u32)
                .map(|i| i.wrapping_mul(2_654_435_761) % (1 << 28))
                .collect();
            for shift in [0u32, 1, 7, 13, 27, 31] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                bin_indices(BinKernel::Scalar, &n, shift, &mut a);
                bin_indices(BinKernel::Simd, &n, shift, &mut b);
                assert_eq!(a, b, "len {len} shift {shift}");
            }
        }
    }

    #[test]
    fn simd_uses_fewer_proxy_instructions() {
        let n: Vec<u32> = (0..4096).collect();
        let mut out = Vec::new();
        let scalar_ops = bin_indices(BinKernel::Scalar, &n, 8, &mut out);
        let simd_ops = bin_indices(BinKernel::Simd, &n, 8, &mut out);
        if BinKernel::Simd.is_vectorized() {
            let ratio = scalar_ops as f64 / simd_ops as f64;
            assert!(
                ratio >= 1.3,
                "expected ≥1.3x instruction reduction, got {ratio}"
            );
        } else {
            assert_eq!(scalar_ops, simd_ops);
        }
    }

    #[test]
    fn tail_handling_is_exact() {
        let n = [7u32, 15, 23]; // length not a multiple of 4
        let mut out = Vec::new();
        bin_indices(BinKernel::Simd, &n, 2, &mut out);
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn empty_input() {
        let mut out = vec![1, 2, 3];
        let ops = bin_indices(BinKernel::Simd, &[], 5, &mut out);
        assert!(out.is_empty());
        assert_eq!(ops, 0);
    }

    #[test]
    fn shift_zero_is_identity() {
        let n = [1u32, 2, 3, 4, 5];
        let mut out = Vec::new();
        bin_indices(BinKernel::Simd, &n, 0, &mut out);
        assert_eq!(out, n);
    }
}
