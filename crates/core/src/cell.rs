//! Phase-separated single-writer cells.
//!
//! The SPMD region of Figure 3 follows a strict ownership discipline that
//! Rust's borrow checker cannot see across threads:
//!
//! * within a phase, per-thread buffers (`BV_t`, `PBV_t`, bin cursors) are
//!   written **only by their owning thread**;
//! * after the phase barrier, the buffers are **read-only** and every thread
//!   may read every other thread's buffers (Phase II walks all threads'
//!   bins; the division plan reads all lengths).
//!
//! `ThreadOwned<T>` encodes that protocol: `with_mut(owner, ..)` grants the
//! owner exclusive access during a write epoch, `read(i)` grants anyone
//! shared access during a read epoch. The barrier between epochs provides
//! the happens-before edge (its AcqRel hand-off publishes the writes).
//!
//! Debug builds verify the protocol dynamically with per-cell borrow flags:
//! concurrent `with_mut`/`with_mut` or `with_mut`/`read` on the same cell
//! panics instead of racing. Release builds compile the checks away.

use std::cell::UnsafeCell;

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicI32, Ordering};

/// A fixed array of cells, each logically owned by one thread.
pub struct ThreadOwned<T> {
    cells: Box<[UnsafeCell<T>]>,
    /// Debug-only borrow state per cell: 0 free, -1 mutably borrowed,
    /// > 0 shared-borrow count.
    #[cfg(debug_assertions)]
    borrows: Box<[AtomicI32]>,
}

// SAFETY: access is mediated by `with_mut`/`read`, whose contract (single
// writer per cell within an epoch, no concurrent writer+reader) makes the
// shared `UnsafeCell`s race-free. `T: Send` suffices because a cell's value
// only ever moves between threads across a barrier.
unsafe impl<T: Send> Sync for ThreadOwned<T> {}

impl<T> ThreadOwned<T> {
    /// Builds `n` cells from a constructor.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> T) -> Self {
        Self {
            cells: (0..n).map(|i| UnsafeCell::new(f(i))).collect(),
            #[cfg(debug_assertions)]
            borrows: (0..n).map(|_| AtomicI32::new(0)).collect(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Mutable access to cell `owner` for the duration of `f`.
    ///
    /// # Contract
    /// During a write epoch, only the owning thread calls this for its own
    /// cell, and nobody calls [`read`](Self::read) on that cell. Violations
    /// panic in debug builds.
    #[inline]
    pub fn with_mut<R>(&self, owner: usize, f: impl FnOnce(&mut T) -> R) -> R {
        #[cfg(debug_assertions)]
        let _guard = BorrowGuard::exclusive(&self.borrows[owner]);
        // SAFETY: the epoch contract guarantees no concurrent access to this
        // cell; debug builds enforce it dynamically.

        unsafe { f(&mut *self.cells[owner].get()) }
    }

    /// Shared access to cell `i` for the duration of `f`.
    ///
    /// # Contract
    /// During a read epoch no thread mutates cell `i`. Violations panic in
    /// debug builds.
    #[inline]
    pub fn read<R>(&self, i: usize, f: impl FnOnce(&T) -> R) -> R {
        #[cfg(debug_assertions)]
        let _guard = BorrowGuard::shared(&self.borrows[i]);
        // SAFETY: see contract.

        unsafe { f(&*self.cells[i].get()) }
    }

    /// Exclusive access to every cell — requires `&mut self`, so the borrow
    /// checker proves no concurrent access (used between runs).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.cells.iter_mut().map(|c| c.get_mut())
    }
}

#[cfg(debug_assertions)]
struct BorrowGuard<'a> {
    flag: &'a AtomicI32,
    exclusive: bool,
}

#[cfg(debug_assertions)]
impl<'a> BorrowGuard<'a> {
    fn exclusive(flag: &'a AtomicI32) -> Self {
        let prev = flag.compare_exchange(0, -1, Ordering::Acquire, Ordering::Relaxed);
        assert!(
            prev.is_ok(),
            "ThreadOwned protocol violation: exclusive access while cell is borrowed ({:?})",
            prev
        );
        Self {
            flag,
            exclusive: true,
        }
    }

    fn shared(flag: &'a AtomicI32) -> Self {
        let prev = flag.fetch_add(1, Ordering::Acquire);
        assert!(
            prev >= 0,
            "ThreadOwned protocol violation: shared access while cell is mutably borrowed"
        );
        Self {
            flag,
            exclusive: false,
        }
    }
}

#[cfg(debug_assertions)]
impl Drop for BorrowGuard<'_> {
    fn drop(&mut self) {
        if self.exclusive {
            self.flag.store(0, Ordering::Release);
        } else {
            self.flag.fetch_sub(1, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_write_then_read() {
        let t = ThreadOwned::from_fn(3, |i| i * 10);
        t.with_mut(1, |v| *v += 5);
        assert_eq!(t.read(1, |v| *v), 15);
        assert_eq!(t.read(0, |v| *v), 0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn concurrent_distinct_cells_are_fine() {
        let t = ThreadOwned::from_fn(4, |_| 0u64);
        std::thread::scope(|s| {
            for i in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.with_mut(i, |v| *v += 1);
                    }
                });
            }
        });
        for i in 0..4 {
            assert_eq!(t.read(i, |v| *v), 1000);
        }
    }

    #[test]
    fn concurrent_shared_reads_are_fine() {
        let t = ThreadOwned::from_fn(1, |_| 7u32);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for _ in 0..1000 {
                        assert_eq!(t.read(0, |v| *v), 7);
                    }
                });
            }
        });
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "protocol violation")]
    fn nested_mut_and_read_panics_in_debug() {
        let t = ThreadOwned::from_fn(1, |_| 0u32);
        t.with_mut(0, |_| {
            t.read(0, |v| *v);
        });
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "protocol violation")]
    fn nested_double_mut_panics_in_debug() {
        let t = ThreadOwned::from_fn(1, |_| 0u32);
        t.with_mut(0, |_| {
            t.with_mut(0, |v| *v += 1);
        });
    }

    #[test]
    fn iter_mut_resets_everything() {
        let mut t = ThreadOwned::from_fn(3, |_| 9u8);
        for v in t.iter_mut() {
            *v = 0;
        }
        assert!((0..3).all(|i| t.read(i, |v| *v) == 0));
    }
}
