//! The paper's contribution: lock- and atomic-free, cache-friendly,
//! load-balanced BFS traversal for multi-socket CPUs.
//!
//! Module map (paper section in parentheses):
//!
//! * [`dp`] — the packed depth+parent array `DP` written with single aligned
//!   stores, the linchpin of the atomic-free correctness argument (§III-A).
//! * [`vis`] — the `VIS` visited-filter schemes compared in Figure 4: no
//!   filter, atomic bitmap (Agarwal-style), and the paper's atomic-free byte
//!   and bit arrays (§III-A).
//! * [`cell`] — `ThreadOwned<T>`: the phase-separated single-writer cells
//!   that let the SPMD region publish per-thread `BV`/`PBV` buffers across
//!   barriers without locks.
//! * [`direction`] — the direction-optimizing extension (beyond the paper):
//!   per-level top-down/bottom-up selection via Beamer-style α/β thresholds
//!   and the dense frontier bitmap the bottom-up kernel probes.
//! * [`pbv`] — Potential Boundary Vertex bins: geometry (`N_VIS`, `N_PBV`,
//!   bin↔socket alignment), parent-marker and (parent, vertex) encodings
//!   (§III-B3, §III-C(4), §III-C(6)).
//! * [`simd`] — scalar and SSE bin-index kernels with instruction-proxy
//!   counters (§III-C(4)).
//! * [`balance`] — the load-balanced, locality-aware division of binned work
//!   across sockets and threads: every socket gets an even share of vertices
//!   as a few whole bins plus at most two partial bins (§III-B3(a)).
//! * [`frontier`] — per-thread boundary-vertex arrays and the one-pass
//!   TLB-aware rearrangement (§III-B3(b), §III-C(7)).
//! * [`prefetch`] — software prefetch of adjacency lists (§III-C(3)).
//! * [`partitioned`] — the §III-B2 socket-partitioned adjacency storage
//!   over the NUMA arena emulation.
//! * [`engine`] — the complete two-phase traversal of Figure 3.
//! * [`session`] — persistent query sessions: epoch-stamped O(touched)
//!   state reset and batched multi-source BFS over one engine.
//! * [`query`] — the dispatch seam servers build on: typed query kinds
//!   (reach, path, multi-source batch) with validation separated from
//!   execution, and tree-path reconstruction from the parent array.
//! * [`serial`] — the textbook BFS of Figure 1, the correctness oracle.
//! * [`baseline`] — re-implementations of prior work compared against in
//!   Figures 4 and 6 (atomic-bitmap parallel BFS).
//! * [`validate`] — Graph500-style BFS-tree validation.
//! * [`stats`] — traversal statistics (traversed edges, steps, phase times).
//! * [`sim`] — replay of the algorithm on the simulated machine of
//!   `bfs-memsim`, producing the traffic measurements behind Figures 4/5/8.
//!
//! # Example
//!
//! ```
//! use bfs_core::{BfsEngine, BfsOptions};
//! use bfs_graph::gen::uniform::uniform_random;
//! use bfs_graph::rng::rng_from_seed;
//! use bfs_platform::Topology;
//!
//! let graph = uniform_random(1000, 6, &mut rng_from_seed(1));
//! let engine = BfsEngine::new(&graph, Topology::synthetic(2, 2), BfsOptions::default());
//! let out = engine.run(0);
//! assert_eq!(out.depths[0], 0);
//! assert!(out.stats.visited_vertices > 900);
//! bfs_core::validate::validate_bfs_tree(&graph, 0, &out.depths, &out.parents).unwrap();
//! ```

pub mod balance;
pub mod baseline;
pub mod cell;
pub mod direction;
pub mod dp;
pub mod engine;
pub mod frontier;
pub mod partitioned;
pub mod pbv;
pub mod prefetch;
pub mod query;
pub mod serial;
pub mod session;
pub mod sim;
pub mod simd;
pub mod stats;
pub mod validate;
pub mod vis;

pub use direction::{count_switches, Direction, DirectionPolicy, FrontierBitmap};
pub use dp::{DepthParent, INF_DEPTH};
pub use engine::{BfsEngine, BfsOptions, BfsOutput, HugepageStatus, HwCounterStatus, Scheduling};
pub use pbv::PbvEncoding;
pub use query::{QueryError, QueryKind, QueryOutcome};
pub use session::BfsSession;
pub use stats::TraversalStats;
pub use vis::VisScheme;

/// Vertex id, re-exported from the graph crate.
pub type VertexId = bfs_graph::VertexId;
