//! Simulated execution: the algorithm replayed on the `bfs-memsim` machine.
//!
//! The paper measures its figures with hardware uncore counters on a
//! dual-socket Nehalem. This module reproduces those measurements by
//! driving the exact memory-access pattern of the engine — same phases,
//! same division of work, same per-edge structure touches — through the
//! simulated cache/QPI hierarchy, with every byte attributed to (phase,
//! socket, channel, structure). Virtual threads execute in a block
//! round-robin interleave so concurrent cache pressure and line ping-pong
//! between sockets are modeled, while results stay fully deterministic.
//!
//! What each scheme contributes (→ which figure):
//!
//! * VIS scheme choice changes per-edge `DP`/`VIS` traffic and, for the
//!   atomic scheme, adds a per-LOCK-op latency penalty → Figure 4;
//! * scheduling choice changes which socket touches which lines, hence QPI
//!   ping-pong and per-socket DRAM balance → Figure 5;
//! * phase tagging splits cycles into Phase I / Phase II / Rearrangement →
//!   Figure 8 (validated against the analytical model).

use std::collections::HashMap;

use bfs_graph::CsrGraph;
use bfs_memsim::{
    BandwidthSpec, Channel, MachineConfig, Phase, Placement, RegionId, SimMachine, TrafficReport,
};
use bfs_trace::{MemStepEvent, NoopSink, RunEvent, TraceEvent, TraceSink};

use crate::balance::{divide_even, divide_static, Segment, Stream};
use crate::dp::INF_DEPTH;
use crate::engine::Scheduling;
use crate::frontier::rearrange_frontier;
use crate::pbv::{decode_window, BinGeometry, BinSet, PbvEncoding};
use crate::vis::VisScheme;
use crate::VertexId;

/// Latency penalty per LOCK-prefixed operation, in cycles. Traffic
/// simulation cannot see instruction serialization, so the atomic baseline
/// charges this on top of its byte traffic (which already includes the
/// dirty-line ping-pong its per-edge RMWs cause). The default is calibrated
/// so the atomic-bitmap scheme lands where Figure 4 puts it — around the
/// no-VIS baseline, "only 10% faster at best (and sometimes even slower)" —
/// and can be swept by the ablation harness.
pub const DEFAULT_ATOMIC_OP_CYCLES: f64 = 2.5;

/// Latency penalty per cross-socket dirty-line migration (ping-pong event),
/// in cycles. A Nehalem remote cache-to-cache transfer costs ≈110 ns
/// (Molka et al. \[21\], the paper's own bandwidth source); out-of-order
/// overlap hides most of it, leaving an effective per-event stall on the
/// dependent chain. Calibrated so the "no multi-socket optimization" scheme
/// of Figure 5 lands at the paper's relative position; sweepable by the
/// ablation harness.
pub const DEFAULT_COHERENCE_STALL_CYCLES: f64 = 60.0;

/// Latency exposed per frontier vertex when adjacency lists are **not**
/// software-prefetched (§III-C(3)): the pointer load and the first neighbor
/// line form a dependent chain that neither the hardware prefetcher nor the
/// out-of-order window can hide across spatially incoherent frontier
/// entries. Roughly one exposed DRAM round trip per vertex after overlap
/// (~60 ns ≈ 176 cycles, MLP ≈ 3). This is the latency-bound-vs-
/// bandwidth-bound contrast the paper's §II motivation is built on; our
/// engine's prefetching (and the sim's `prefetch: true` default) removes it.
pub const DEFAULT_ADJ_CHAIN_STALL_CYCLES: f64 = 50.0;

/// Latency exposed per TLB miss (page walk), after paging-structure caches:
/// what the §III-B3(b) rearrangement exists to avoid.
pub const DEFAULT_TLB_WALK_STALL_CYCLES: f64 = 20.0;

/// Configuration of a simulated run.
#[derive(Clone, Debug)]
pub struct SimBfsConfig {
    /// Simulated machine geometry.
    pub machine: MachineConfig,
    /// VIS scheme (Figure 4 series).
    pub vis: VisScheme,
    /// Work distribution (Figure 5 series).
    pub scheduling: Scheduling,
    /// Override `N_VIS` (default: §III-A rule from the machine's LLC).
    pub n_vis_override: Option<usize>,
    /// Simulate the TLB-aware rearrangement pass.
    pub rearrange: bool,
    /// PBV stream encoding.
    pub encoding: PbvEncoding,
    /// Entries processed per virtual thread per round-robin turn.
    pub interleave: usize,
    /// Cycles charged per LOCK-prefixed operation.
    pub atomic_op_cycles: f64,
    /// Cycles charged per cross-socket dirty-line migration.
    pub coherence_stall_cycles: f64,
    /// Model the §III-C(3) software prefetch of adjacency lists: when
    /// `false` (the unoptimized baselines), every frontier vertex exposes a
    /// dependent-load chain charged at `adj_chain_stall_cycles`.
    pub prefetch: bool,
    /// Cycles charged per unprefetched adjacency chain.
    pub adj_chain_stall_cycles: f64,
    /// Cycles charged per TLB miss.
    pub tlb_walk_stall_cycles: f64,
}

impl Default for SimBfsConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::xeon_x5570_2s(),
            vis: VisScheme::Bit,
            scheduling: Scheduling::LoadBalanced,
            n_vis_override: None,
            rearrange: true,
            encoding: PbvEncoding::Auto,
            // Fine-grained interleave: real threads interleave at
            // instruction granularity, and the coherence ping-pong of the
            // unoptimized scheme (Figure 5) only shows when virtual threads
            // alternate frequently. The two-phase schemes are insensitive
            // to this knob (their locality is structural).
            interleave: 8,
            atomic_op_cycles: DEFAULT_ATOMIC_OP_CYCLES,
            coherence_stall_cycles: DEFAULT_COHERENCE_STALL_CYCLES,
            prefetch: true,
            adj_chain_stall_cycles: DEFAULT_ADJ_CHAIN_STALL_CYCLES,
            tlb_walk_stall_cycles: DEFAULT_TLB_WALK_STALL_CYCLES,
        }
    }
}

/// Per-step bottleneck accumulator.
///
/// A run-aggregated byte count hides *alternating* imbalance (the stress
/// graph works socket 0 on even steps and socket 1 on odd steps, so whole-
/// run per-socket totals look even). BSP time is the sum over steps of the
/// **slowest socket per step**; this ledger diffs the machine's counters at
/// every step boundary and accumulates, per (phase, channel), the max-over-
/// sockets of each step's delta.
#[derive(Debug, Default)]
struct BottleneckLedger {
    bytes: HashMap<(Phase, Channel), u64>,
    prev: HashMap<(Phase, usize, Channel), u64>,
}

impl BottleneckLedger {
    fn end_step(&mut self, machine: &SimMachine) {
        let mut now: HashMap<(Phase, usize, Channel), u64> = HashMap::new();
        for (&(phase, socket, channel, _region), &b) in machine.ledger().iter() {
            *now.entry((phase, socket, channel)).or_insert(0) += b;
        }
        let mut step_max: HashMap<(Phase, Channel), u64> = HashMap::new();
        for (&(phase, socket, channel), &b) in &now {
            let before = self
                .prev
                .get(&(phase, socket, channel))
                .copied()
                .unwrap_or(0);
            let delta = b - before;
            let e = step_max.entry((phase, channel)).or_insert(0);
            *e = (*e).max(delta);
        }
        for ((phase, channel), d) in step_max {
            *self.bytes.entry((phase, channel)).or_insert(0) += d;
        }
        self.prev = now;
    }

    fn get(&self, phase: Phase, channel: Channel) -> u64 {
        self.bytes.get(&(phase, channel)).copied().unwrap_or(0)
    }
}

/// Output of a simulated run.
pub struct SimBfsResult {
    /// Depth per vertex (`INF_DEPTH` = unreached) — checked against the
    /// serial oracle in tests.
    pub depths: Vec<u32>,
    /// Vertices assigned a depth.
    pub visited_vertices: u64,
    /// Traversed edges (sum of degrees over visited vertices).
    pub traversed_edges: u64,
    /// BFS depth.
    pub steps: u32,
    /// LOCK-prefixed operations executed (atomic scheme only).
    pub atomic_ops: u64,
    /// Cycles per atomic op used by this run.
    pub atomic_op_cycles: f64,
    /// Cycles per cross-socket dirty-line migration used by this run.
    pub coherence_stall_cycles: f64,
    /// Unprefetched adjacency chains executed (0 when prefetch is modeled).
    pub adj_chains: u64,
    /// Cycles per unprefetched adjacency chain used by this run.
    pub adj_chain_stall_cycles: f64,
    /// Cycles per TLB walk used by this run.
    pub tlb_walk_stall_cycles: f64,
    /// Which scheduling produced this run.
    pub scheduling: Scheduling,
    /// The machine after the run (owns the traffic ledger).
    pub machine: SimMachine,
    /// Region id of `Adj` (for attributing TLB-walk stalls).
    adj_region: RegionId,
    bottleneck: BottleneckLedger,
}

/// Per-phase cycles/edge of a simulated run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimPhaseCycles {
    pub phase1: f64,
    pub phase2: f64,
    pub rearrange: f64,
}

impl SimPhaseCycles {
    /// Total cycles per edge.
    pub fn total(&self) -> f64 {
        self.phase1 + self.phase2 + self.rearrange
    }
}

impl SimBfsResult {
    /// Traffic report over the run's (whole-run) ledger: bytes-per-edge
    /// queries for the IV.1 comparisons.
    pub fn report(&self) -> TrafficReport<'_> {
        TrafficReport::new(self.machine.ledger())
    }

    /// Cycles/edge for one phase from the per-step bottleneck bytes,
    /// composed the way the paper's model composes channels:
    ///
    /// * DRAM time is end-to-end (Table I's achievable 22 GB/s is measured
    ///   at the core), so the LLC leg of DRAM-sourced lines is *inside* it;
    /// * only LLC-**hit** traffic — fills beyond what arrived from DRAM/QPI,
    ///   which is exactly the cache-resident VIS term of eqn IV.1c — adds
    ///   time on the shared LLC interface ("we need to add up the times",
    ///   Appendix B);
    /// * DRAM and QPI occupancy overlap (the slower governs, as in IV.3);
    /// * each dirty-line migration adds a latency stall on top of its link
    ///   occupancy.
    fn one_phase(&self, phase: Phase, bw: &BandwidthSpec) -> f64 {
        let edges = self.traversed_edges.max(1) as f64;
        let b = |c: Channel| self.bottleneck.get(phase, c);
        let line = self.machine.config().line_bytes;
        let dram = bw.cycles_for(b(Channel::DramRead) + b(Channel::DramWrite), bw.dram_gbps);
        let qpi = bw.cycles_for(b(Channel::Qpi) + b(Channel::QpiMigration), bw.qpi_gbps);
        let llc_hit_reads = b(Channel::LlcToL2)
            .saturating_sub(b(Channel::DramRead) + b(Channel::Qpi) + b(Channel::QpiMigration));
        let llc_extra_writes = b(Channel::L2ToLlc).saturating_sub(b(Channel::DramWrite));
        let llc = bw.cycles_for(llc_hit_reads, bw.llc_to_l2_gbps)
            + bw.cycles_for(llc_extra_writes, bw.l2_to_llc_gbps);
        let walk = bw.cycles_for(b(Channel::PageWalk), bw.dram_gbps);
        let migrations = b(Channel::QpiMigration) / line;
        // TLB-walk latency is charged only for `Adj` accesses: frontier-
        // directed pointer chasing is where walks serialize (and what the
        // §III-B3(b) rearrangement removes). Walks on streamed or
        // DRAM-bound structures overlap the access latency already charged.
        // 8 bytes are charged per walk (one PTE), so bytes/8 counts misses;
        // cores walk in parallel, so the per-socket average is the exposed
        // serial cost.
        let adj_walks = self.machine.ledger().total(
            Some(phase),
            None,
            Some(Channel::PageWalk),
            Some(self.adj_region),
        ) / 8;
        let sockets = self.machine.config().sockets as u64;
        let stall = migrations as f64 * self.coherence_stall_cycles
            + (adj_walks / sockets) as f64 * self.tlb_walk_stall_cycles;
        (dram.max(qpi) + llc + walk + stall) / edges
    }

    /// Cycles/edge decomposed by phase; the atomic latency penalty is
    /// charged where the VIS updates happen.
    pub fn phase_cycles(&self, bw: &BandwidthSpec) -> SimPhaseCycles {
        let edges = self.traversed_edges.max(1);
        let atomic_penalty = self.atomic_ops as f64 * self.atomic_op_cycles / edges as f64;
        let mut c = SimPhaseCycles {
            phase1: self.one_phase(Phase::PhaseOne, bw),
            phase2: self.one_phase(Phase::PhaseTwo, bw),
            rearrange: self.one_phase(Phase::Rearrange, bw),
        };
        // Dependent adjacency loads without prefetch stall Phase I.
        c.phase1 += self.adj_chains as f64 * self.adj_chain_stall_cycles / edges as f64;
        if matches!(self.scheduling, Scheduling::NoMultiSocketOpt) {
            c.phase1 += atomic_penalty;
        } else {
            c.phase2 += atomic_penalty;
        }
        c
    }

    /// MTEPS implied by [`phase_cycles`](Self::phase_cycles).
    pub fn mteps(&self, bw: &BandwidthSpec) -> f64 {
        let cpe = self.phase_cycles(bw).total();
        if cpe == 0.0 {
            return f64::INFINITY;
        }
        bw.freq_ghz * 1e9 / cpe / 1e6
    }
}

/// Region handles for the simulated data structures.
struct Regions {
    adj_idx: RegionId,
    adj: RegionId,
    dp: RegionId,
    vis: Option<RegionId>,
    /// `[thread]` current and next frontier regions.
    bv_cur: Vec<RegionId>,
    bv_next: Vec<RegionId>,
    /// `[thread][bin]`.
    pbv: Vec<Vec<RegionId>>,
    /// Rearrangement temporary per thread.
    temp: Vec<RegionId>,
}

/// Runs a full simulated traversal of `graph` from `source`.
pub fn simulate_bfs(graph: &CsrGraph, cfg: &SimBfsConfig, source: VertexId) -> SimBfsResult {
    simulate_bfs_traced(graph, cfg, source, &NoopSink)
}

/// [`simulate_bfs`] emitting one [`RunEvent`] plus one [`MemStepEvent`] per
/// executed step into `sink`.
///
/// Unlike the wall-clock engines (which log one event per *depth level*),
/// the replay also emits the final, empty-frontier step: it still generates
/// traffic, and per-channel deltas must sum to the ledger totals.
pub fn simulate_bfs_traced(
    graph: &CsrGraph,
    cfg: &SimBfsConfig,
    source: VertexId,
    sink: &dyn TraceSink,
) -> SimBfsResult {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!(cfg.interleave > 0);
    let mc = cfg.machine;
    let nthreads = mc.total_cores();
    let sockets = mc.sockets;
    let geometry = match cfg.n_vis_override {
        Some(nv) => BinGeometry::with_n_vis(n, sockets, nv),
        None => BinGeometry::from_llc(n, sockets, mc.llc_bytes),
    };
    let encoding = cfg
        .encoding
        .resolve(geometry.n_bins, graph.average_degree().max(1.0));
    let tracing = sink.enabled();
    if tracing {
        sink.record(&TraceEvent::Run(RunEvent {
            engine: "memsim".to_string(),
            vertices: n as u64,
            edges: graph.num_edges(),
            source,
            sockets,
            lanes_per_socket: nthreads / sockets,
            threads: nthreads,
            n_vis: Some(geometry.n_vis),
            n_pbv: Some(geometry.n_bins),
            encoding: Some(format!("{encoding:?}")),
            scheduling: Some(format!("{:?}", cfg.scheduling)),
            vis: Some(format!("{:?}", cfg.vis)),
            nodes: None,
        }));
    }
    // Running per-channel totals, so each step reports its delta.
    let mut chan_prev = [0u64; Channel::ALL.len()];
    let mut machine = SimMachine::new(mc);
    let regions = alloc_regions(graph, &mut machine, &geometry, cfg, nthreads);
    let core_of = |t: usize| t; // virtual thread t runs on core t

    // Host-side ground-truth state.
    let mut depths = vec![INF_DEPTH; n];
    let mut vis_host = vec![false; n];
    depths[source as usize] = 0;
    vis_host[source as usize] = true;
    let mut bv_cur: Vec<Vec<VertexId>> = vec![Vec::new(); nthreads];
    let mut bv_next: Vec<Vec<VertexId>> = vec![Vec::new(); nthreads];
    bv_cur[0].push(source);
    let mut bins: Vec<BinSet> = (0..nthreads)
        .map(|_| BinSet::new(geometry.n_bins, encoding))
        .collect();
    let mut scratch: Vec<VertexId> = Vec::new();
    let mut atomic_ops = 0u64;
    let mut adj_chains = 0u64;
    let mut bottleneck = BottleneckLedger::default();
    let two_phase = cfg.scheduling != Scheduling::NoMultiSocketOpt;
    let lanes = nthreads / sockets;

    let mut step = 1u32;
    let mut max_depth = 0u32;
    loop {
        assert!(step <= n as u32 + 1, "simulated BFS failed to terminate");
        machine.set_phase(Phase::PhaseOne);
        // ---- Phase I (or direct expansion) ----
        let streams: Vec<Stream> = (0..nthreads)
            .map(|t| Stream {
                bin: t,
                owner: t,
                len: bv_cur[t].len(),
            })
            .collect();
        let plan: Vec<Vec<Segment>> = match cfg.scheduling {
            Scheduling::SocketAwareStatic => {
                divide_static(&streams, |b| b / lanes, sockets, lanes, 1)
            }
            _ => divide_even(&streams, nthreads, 1),
        };
        if two_phase {
            for b in bins.iter_mut() {
                b.clear();
            }
            interleaved(&plan, cfg.interleave, |t, seg, lo, hi| {
                for k in lo..hi {
                    let u = bv_cur[seg.owner][seg.range.start + k];
                    sim_read_frontier(
                        &mut machine,
                        core_of(t),
                        &regions,
                        seg.owner,
                        seg.range.start + k,
                        true,
                    );
                    sim_read_adjacency(&mut machine, core_of(t), &regions, graph, u);
                    if !cfg.prefetch {
                        adj_chains += 1;
                    }
                    let my_bins = &mut bins[t];
                    let before: Vec<usize> =
                        (0..geometry.n_bins).map(|b| my_bins.bin_len(b)).collect();
                    my_bins.begin_vertex(u);
                    for &v in graph.neighbors(u) {
                        my_bins.push_neighbor(geometry.bin_of(v), v);
                    }
                    // Charge the bin writes: everything appended past the
                    // old cursors.
                    #[allow(clippy::needless_range_loop)] // b indexes two parallel structures
                    for b in 0..geometry.n_bins {
                        let (old, new) = (before[b], my_bins.bin_len(b));
                        if new > old {
                            machine.write(
                                core_of(t),
                                regions.pbv[t][b],
                                old as u64 * 4,
                                (new - old) as u64 * 4,
                            );
                        }
                    }
                }
            });
        } else {
            // Single-phase: direct VIS/DP updates from neighbor lists.
            interleaved(&plan, cfg.interleave, |t, seg, lo, hi| {
                for k in lo..hi {
                    let u = bv_cur[seg.owner][seg.range.start + k];
                    sim_read_frontier(
                        &mut machine,
                        core_of(t),
                        &regions,
                        seg.owner,
                        seg.range.start + k,
                        true,
                    );
                    sim_read_adjacency(&mut machine, core_of(t), &regions, graph, u);
                    if !cfg.prefetch {
                        adj_chains += 1;
                    }
                    for &v in graph.neighbors(u) {
                        sim_visit(
                            &mut machine,
                            core_of(t),
                            &regions,
                            cfg,
                            v,
                            step,
                            &mut depths,
                            &mut vis_host,
                            &mut atomic_ops,
                        )
                        .then(|| {
                            let pos = bv_next[t].len();
                            machine.write(core_of(t), regions.bv_next[t], pos as u64 * 4, 4);
                            bv_next[t].push(v);
                            max_depth = step;
                        });
                    }
                }
            });
        }

        // ---- Phase II ----
        if two_phase {
            machine.set_phase(Phase::PhaseTwo);
            let align = encoding.alignment();
            let mut streams = Vec::with_capacity(geometry.n_bins * nthreads);
            for b in 0..geometry.n_bins {
                #[allow(clippy::needless_range_loop)] // t is a thread id, not a plain index
                for t in 0..nthreads {
                    streams.push(Stream {
                        bin: b,
                        owner: t,
                        len: bins[t].bin_len(b),
                    });
                }
            }
            let plan: Vec<Vec<Segment>> = match cfg.scheduling {
                Scheduling::SocketAwareStatic => divide_static(
                    &streams,
                    |b| geometry.socket_of_bin(b),
                    sockets,
                    lanes,
                    align,
                ),
                _ => divide_even(&streams, nthreads, align),
            };
            interleaved(&plan, cfg.interleave, |t, seg, lo, hi| {
                // Read the window's words, then visit the decoded units.
                let (wlo, whi) = (seg.range.start + lo, seg.range.start + hi);
                machine.read(
                    core_of(t),
                    regions.pbv[seg.owner][seg.bin],
                    wlo as u64 * 4,
                    (whi - wlo) as u64 * 4,
                );
                let data = bins[seg.owner].bin(seg.bin);
                let mut visits: Vec<(VertexId, VertexId)> = Vec::new();
                decode_window(data, wlo, whi, encoding, |p, v| visits.push((p, v)));
                for (_parent, v) in visits {
                    if sim_visit(
                        &mut machine,
                        core_of(t),
                        &regions,
                        cfg,
                        v,
                        step,
                        &mut depths,
                        &mut vis_host,
                        &mut atomic_ops,
                    ) {
                        let pos = bv_next[t].len();
                        machine.write(core_of(t), regions.bv_next[t], pos as u64 * 4, 4);
                        bv_next[t].push(v);
                        max_depth = step;
                    }
                }
            });
        }

        // ---- Rearrangement ----
        if cfg.rearrange {
            machine.set_phase(Phase::Rearrange);
            #[allow(clippy::needless_range_loop)] // t is a thread id across two arrays
            for t in 0..nthreads {
                let len = bv_next[t].len() as u64;
                if len > 1 {
                    // histogram read + scatter (read src, write temp) +
                    // copy back (read temp, write dst): the paper's
                    // 24 bytes/vertex once write-allocation is modeled.
                    machine.read(core_of(t), regions.bv_next[t], 0, len * 4);
                    machine.read(core_of(t), regions.bv_next[t], 0, len * 4);
                    machine.write(core_of(t), regions.temp[t], 0, len * 4);
                    machine.read(core_of(t), regions.temp[t], 0, len * 4);
                    machine.write(core_of(t), regions.bv_next[t], 0, len * 4);
                    rearrange_frontier(
                        &mut bv_next[t],
                        graph,
                        mc.page_bytes,
                        mc.tlb_entries as u64,
                        &mut scratch,
                    );
                }
            }
        }

        bottleneck.end_step(&machine);
        let total: usize = bv_next.iter().map(|f| f.len()).sum();
        if tracing {
            let mut delta = [0u64; Channel::ALL.len()];
            for (i, &c) in Channel::ALL.iter().enumerate() {
                let now = machine.ledger().total(None, None, Some(c), None);
                delta[i] = now - chan_prev[i];
                chan_prev[i] = now;
            }
            let by = |c: Channel| delta[Channel::ALL.iter().position(|&x| x == c).unwrap()];
            sink.record(&TraceEvent::MemStep(MemStepEvent {
                step,
                frontier: total as u64,
                dram_read: by(Channel::DramRead),
                dram_write: by(Channel::DramWrite),
                qpi: by(Channel::Qpi),
                qpi_migration: by(Channel::QpiMigration),
                llc_to_l2: by(Channel::LlcToL2),
                l2_to_llc: by(Channel::L2ToLlc),
                page_walk: by(Channel::PageWalk),
            }));
        }
        for t in 0..nthreads {
            std::mem::swap(&mut bv_cur[t], &mut bv_next[t]);
            bv_next[t].clear();
        }
        if total == 0 {
            break;
        }
        step += 1;
    }

    let mut visited = 0u64;
    let mut traversed = 0u64;
    #[allow(clippy::needless_range_loop)] // v is a vertex id used against two views
    for v in 0..n {
        if depths[v] != INF_DEPTH {
            visited += 1;
            traversed += graph.degree(v as u32) as u64;
        }
    }
    SimBfsResult {
        depths,
        visited_vertices: visited,
        traversed_edges: traversed,
        steps: max_depth,
        atomic_ops,
        atomic_op_cycles: cfg.atomic_op_cycles,
        coherence_stall_cycles: cfg.coherence_stall_cycles,
        adj_chains,
        adj_chain_stall_cycles: cfg.adj_chain_stall_cycles,
        tlb_walk_stall_cycles: cfg.tlb_walk_stall_cycles,
        scheduling: cfg.scheduling,
        adj_region: regions.adj,
        machine,
        bottleneck,
    }
}

/// Allocates the simulated address space following §III-B placement.
fn alloc_regions(
    graph: &CsrGraph,
    machine: &mut SimMachine,
    geometry: &BinGeometry,
    cfg: &SimBfsConfig,
    nthreads: usize,
) -> Regions {
    let n = graph.num_vertices() as u64;
    let m = graph.num_edges();
    let sockets = machine.config().sockets;
    let cores_per_socket = machine.config().cores_per_socket;
    let vns = geometry.vertices_per_socket as u64;
    // Adj index: |V|+1 offsets of 8 bytes, striped at the V_NS boundary.
    let adj_idx = machine.alloc(
        "AdjIdx",
        (n + 1) * 8,
        Placement::Striped {
            stripe_bytes: vns * 8,
        },
    );
    // Adj neighbor storage: cut at the byte offsets of the V_NS boundaries.
    let cuts: Vec<u64> = (1..sockets)
        .map(|s| {
            let v = ((s as u64 * vns).min(n)) as usize;
            graph.offsets()[v] * 4
        })
        .collect();
    let adj = machine.alloc("Adj", (m * 4).max(1), Placement::Boundaries(cuts));
    let dp = machine.alloc(
        "DP",
        n.max(1) * 8,
        Placement::Striped {
            stripe_bytes: vns * 8,
        },
    );
    let vis = match cfg.vis {
        VisScheme::None => None,
        VisScheme::Byte => {
            Some(machine.alloc("VIS", n.max(1), Placement::Striped { stripe_bytes: vns }))
        }
        VisScheme::Bit | VisScheme::AtomicBit | VisScheme::AtomicBitTest => Some(machine.alloc(
            "VIS",
            n.div_ceil(8).max(1),
            Placement::Striped {
                stripe_bytes: (vns / 8).max(1),
            },
        )),
    };
    let socket_of_thread = |t: usize| t / cores_per_socket;
    let bv_cur = (0..nthreads)
        .map(|t| {
            machine.alloc(
                &format!("BVc[{t}]"),
                n.max(1) * 4,
                Placement::Fixed(socket_of_thread(t)),
            )
        })
        .collect();
    let bv_next = (0..nthreads)
        .map(|t| {
            machine.alloc(
                &format!("BVn[{t}]"),
                n.max(1) * 4,
                Placement::Fixed(socket_of_thread(t)),
            )
        })
        .collect();
    let pbv = (0..nthreads)
        .map(|t| {
            (0..geometry.n_bins)
                .map(|b| {
                    machine.alloc(
                        &format!("PBV[{t}][{b}]"),
                        ((n + 2 * m) * 4).max(1),
                        Placement::Fixed(socket_of_thread(t)),
                    )
                })
                .collect()
        })
        .collect();
    let temp = (0..nthreads)
        .map(|t| {
            machine.alloc(
                &format!("Temp[{t}]"),
                n.max(1) * 4,
                Placement::Fixed(socket_of_thread(t)),
            )
        })
        .collect();
    Regions {
        adj_idx,
        adj,
        dp,
        vis,
        bv_cur,
        bv_next,
        pbv,
        temp,
    }
}

/// Block round-robin over the per-thread segment plans: each turn, thread
/// `t` processes up to `grain` entries of its remaining work, modeling
/// concurrent execution deterministically.
fn interleaved(
    plan: &[Vec<Segment>],
    grain: usize,
    mut body: impl FnMut(usize, &Segment, usize, usize),
) {
    // Cursor per thread: (segment index, offset within segment).
    let mut cursors: Vec<(usize, usize)> = vec![(0, 0); plan.len()];
    loop {
        let mut progressed = false;
        for (t, segs) in plan.iter().enumerate() {
            let (mut si, mut off) = cursors[t];
            let mut budget = grain;
            while budget > 0 && si < segs.len() {
                let seg = &segs[si];
                let remaining = seg.len() - off;
                if remaining == 0 {
                    si += 1;
                    off = 0;
                    continue;
                }
                let take = remaining.min(budget);
                body(t, seg, off, off + take);
                progressed = true;
                off += take;
                budget -= take;
                if off == seg.len() {
                    si += 1;
                    off = 0;
                }
            }
            cursors[t] = (si, off);
        }
        if !progressed {
            break;
        }
    }
}

/// Charges the read of one frontier entry.
fn sim_read_frontier(
    machine: &mut SimMachine,
    core: usize,
    regions: &Regions,
    owner: usize,
    index: usize,
    current: bool,
) {
    let r = if current {
        regions.bv_cur[owner]
    } else {
        regions.bv_next[owner]
    };
    machine.read(core, r, index as u64 * 4, 4);
}

/// Charges the adjacency accesses of one frontier vertex: the offset pair
/// and the neighbor list.
fn sim_read_adjacency(
    machine: &mut SimMachine,
    core: usize,
    regions: &Regions,
    graph: &CsrGraph,
    u: VertexId,
) {
    machine.read(core, regions.adj_idx, u as u64 * 8, 16);
    let deg = graph.degree(u) as u64;
    if deg > 0 {
        machine.read(core, regions.adj, graph.adjacency_byte_offset(u), deg * 4);
    }
}

/// The VIS-filter + DP-claim protocol of Figure 2, with traffic and host
/// bookkeeping. Returns `true` if the vertex was claimed (should be
/// enqueued).
#[allow(clippy::too_many_arguments)]
fn sim_visit(
    machine: &mut SimMachine,
    core: usize,
    regions: &Regions,
    cfg: &SimBfsConfig,
    v: VertexId,
    step: u32,
    depths: &mut [u32],
    vis_host: &mut [bool],
    atomic_ops: &mut u64,
) -> bool {
    let vi = v as usize;
    match cfg.vis {
        VisScheme::None => {}
        VisScheme::Byte => {
            let r = regions.vis.expect("vis region");
            machine.read(core, r, v as u64, 1);
            if vis_host[vi] {
                return false;
            }
            machine.write(core, r, v as u64, 1);
            vis_host[vi] = true;
        }
        VisScheme::Bit => {
            let r = regions.vis.expect("vis region");
            machine.read(core, r, v as u64 / 8, 1);
            if vis_host[vi] {
                return false;
            }
            machine.write(core, r, v as u64 / 8, 1);
            vis_host[vi] = true;
        }
        VisScheme::AtomicBit => {
            let r = regions.vis.expect("vis region");
            // fetch_or = locked read-modify-write of the byte, per edge.
            machine.read(core, r, v as u64 / 8, 1);
            machine.write(core, r, v as u64 / 8, 1);
            *atomic_ops += 1;
            if vis_host[vi] {
                return false;
            }
            vis_host[vi] = true;
            // Atomic claim is exactly-once: write DP unconditionally.
            machine.write(core, regions.dp, v as u64 * 8, 8);
            depths[vi] = step;
            return true;
        }
        VisScheme::AtomicBitTest => {
            let r = regions.vis.expect("vis region");
            // Plain read per edge; the LOCK RMW only on an apparent claim.
            machine.read(core, r, v as u64 / 8, 1);
            if vis_host[vi] {
                return false;
            }
            machine.write(core, r, v as u64 / 8, 1);
            *atomic_ops += 1;
            vis_host[vi] = true;
            machine.write(core, regions.dp, v as u64 * 8, 8);
            depths[vi] = step;
            return true;
        }
    }
    // Atomic-free path: read DP, claim if INF.
    machine.read(core, regions.dp, v as u64 * 8, 8);
    if depths[vi] != INF_DEPTH {
        return false;
    }
    machine.write(core, regions.dp, v as u64 * 8, 8);
    depths[vi] = step;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use bfs_graph::gen::stress::stress_bipartite;
    use bfs_graph::gen::uniform::uniform_random;
    use bfs_graph::rng::rng_from_seed;
    use bfs_memsim::Channel;

    fn small_machine(sockets: usize) -> MachineConfig {
        MachineConfig {
            sockets,
            cores_per_socket: 2,
            l2_bytes: 4 << 10,
            llc_bytes: 64 << 10,
            tlb_entries: 16,
            ..MachineConfig::xeon_x5570_2s()
        }
    }

    fn check_depths(graph: &CsrGraph, cfg: &SimBfsConfig, source: VertexId) -> SimBfsResult {
        let r = simulate_bfs(graph, cfg, source);
        let oracle = serial_bfs(graph, source);
        assert_eq!(r.depths, oracle.depths, "simulated depths diverge");
        assert_eq!(r.visited_vertices, oracle.visited);
        assert_eq!(r.traversed_edges, oracle.traversed_edges);
        assert_eq!(r.steps, oracle.max_depth);
        r
    }

    #[test]
    fn simulated_depths_match_serial_all_schemes() {
        let g = uniform_random(600, 6, &mut rng_from_seed(1));
        for vis in VisScheme::ALL {
            for scheduling in [
                Scheduling::NoMultiSocketOpt,
                Scheduling::SocketAwareStatic,
                Scheduling::LoadBalanced,
            ] {
                let cfg = SimBfsConfig {
                    machine: small_machine(2),
                    vis,
                    scheduling,
                    ..Default::default()
                };
                check_depths(&g, &cfg, 0);
            }
        }
    }

    #[test]
    fn traced_sim_memstep_deltas_sum_to_ledger_totals() {
        use bfs_trace::RingSink;
        let g = uniform_random(500, 5, &mut rng_from_seed(9));
        let cfg = SimBfsConfig {
            machine: small_machine(2),
            ..Default::default()
        };
        let ring = RingSink::new(4096);
        let r = simulate_bfs_traced(&g, &cfg, 0, &ring);
        let events = ring.into_events();
        let runs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Run(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].engine, "memsim");
        assert!(runs[0].n_pbv.is_some());
        let steps: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MemStep(m) => Some(m),
                _ => None,
            })
            .collect();
        // One event per executed step: the depth levels plus the final
        // empty-frontier step.
        assert_eq!(steps.len() as u32, r.steps + 1);
        assert_eq!(steps.last().unwrap().frontier, 0);
        for (sums, chan) in [
            (
                steps.iter().map(|m| m.dram_read).sum::<u64>(),
                Channel::DramRead,
            ),
            (
                steps.iter().map(|m| m.dram_write).sum::<u64>(),
                Channel::DramWrite,
            ),
            (steps.iter().map(|m| m.qpi).sum::<u64>(), Channel::Qpi),
            (
                steps.iter().map(|m| m.qpi_migration).sum::<u64>(),
                Channel::QpiMigration,
            ),
            (
                steps.iter().map(|m| m.llc_to_l2).sum::<u64>(),
                Channel::LlcToL2,
            ),
            (
                steps.iter().map(|m| m.l2_to_llc).sum::<u64>(),
                Channel::L2ToLlc,
            ),
            (
                steps.iter().map(|m| m.page_walk).sum::<u64>(),
                Channel::PageWalk,
            ),
        ] {
            assert_eq!(
                sums,
                r.machine.ledger().total(None, None, Some(chan), None),
                "per-step deltas must reconstruct the {chan:?} total"
            );
        }
        // The untraced run is unchanged by tracing.
        let plain = simulate_bfs(&g, &cfg, 0);
        assert_eq!(plain.depths, r.depths);
    }

    #[test]
    fn atomic_scheme_counts_lock_ops() {
        let g = uniform_random(400, 4, &mut rng_from_seed(2));
        let cfg = SimBfsConfig {
            machine: small_machine(1),
            vis: VisScheme::AtomicBit,
            ..Default::default()
        };
        let r = check_depths(&g, &cfg, 0);
        // One fetch_or per traversed edge (modulo the source).
        assert!(r.atomic_ops >= r.traversed_edges / 2);
        let free = SimBfsConfig {
            machine: small_machine(1),
            vis: VisScheme::Bit,
            ..Default::default()
        };
        assert_eq!(check_depths(&g, &free, 0).atomic_ops, 0);
    }

    #[test]
    fn no_multisocket_scheme_pingpongs_vis_lines() {
        // The defining effect of Figure 5: spatially incoherent updates from
        // both sockets ping-pong VIS/DP lines; the two-phase load-balanced
        // scheme keeps them socket-local.
        let g = uniform_random(2000, 8, &mut rng_from_seed(3));
        let naive = simulate_bfs(
            &g,
            &SimBfsConfig {
                machine: small_machine(2),
                scheduling: Scheduling::NoMultiSocketOpt,
                ..Default::default()
            },
            0,
        );
        let balanced = simulate_bfs(
            &g,
            &SimBfsConfig {
                machine: small_machine(2),
                scheduling: Scheduling::LoadBalanced,
                ..Default::default()
            },
            0,
        );
        let qpi = |r: &SimBfsResult, reg: &str| {
            let id = (0..r.machine.space().num_regions() as u16)
                .map(RegionId)
                .find(|&i| r.machine.space().name(i) == reg)
                .unwrap();
            r.machine
                .ledger()
                .total(None, None, Some(Channel::Qpi), Some(id))
        };
        let naive_vis_qpi = qpi(&naive, "VIS") + qpi(&naive, "DP");
        let bal_vis_qpi = qpi(&balanced, "VIS") + qpi(&balanced, "DP");
        assert!(
            naive_vis_qpi > 2 * bal_vis_qpi.max(1),
            "naive {naive_vis_qpi} should dwarf balanced {bal_vis_qpi}"
        );
    }

    #[test]
    fn stress_graph_static_is_imbalanced_balanced_is_not() {
        // §V-A: "the benefit of load-balancing is higher for larger degree
        // graphs" — the stress-case win shows at degree 32, not 8.
        let g = stress_bipartite(3000, 32, &mut rng_from_seed(4));
        let run = |scheduling| {
            simulate_bfs(
                &g,
                &SimBfsConfig {
                    machine: small_machine(2),
                    scheduling,
                    ..Default::default()
                },
                0,
            )
        };
        let stat = run(Scheduling::SocketAwareStatic);
        let bal = run(Scheduling::LoadBalanced);
        let bw = BandwidthSpec::xeon_x5570();
        // Balanced should be at least as fast on the stress case.
        let (ts, tb) = (
            stat.phase_cycles(&bw).total(),
            bal.phase_cycles(&bw).total(),
        );
        assert!(
            tb <= ts * 1.02,
            "load-balanced ({tb:.3}) must not lose to static ({ts:.3}) on the stress graph"
        );
    }

    #[test]
    fn rearrange_reduces_page_walk_traffic() {
        // Big adjacency footprint + tiny TLB: rearranged frontiers must
        // cause fewer page walks.
        let g = uniform_random(8192, 8, &mut rng_from_seed(5));
        let mut m = small_machine(1);
        m.tlb_entries = 4;
        let walks = |rearrange: bool| {
            let r = simulate_bfs(
                &g,
                &SimBfsConfig {
                    machine: m,
                    rearrange,
                    ..Default::default()
                },
                0,
            );
            r.machine
                .ledger()
                .total(Some(Phase::PhaseOne), None, Some(Channel::PageWalk), None)
        };
        let with = walks(true);
        let without = walks(false);
        assert!(
            with < without,
            "rearrangement must cut Phase-I page walks: {with} vs {without}"
        );
    }

    #[test]
    fn phase_cycles_are_positive_and_mteps_finite() {
        let g = uniform_random(500, 4, &mut rng_from_seed(6));
        let r = check_depths(
            &g,
            &SimBfsConfig {
                machine: small_machine(2),
                ..Default::default()
            },
            0,
        );
        let bw = BandwidthSpec::xeon_x5570();
        let c = r.phase_cycles(&bw);
        assert!(c.phase1 > 0.0 && c.phase2 > 0.0);
        assert!(r.mteps(&bw).is_finite());
    }

    #[test]
    fn interleave_granularity_does_not_change_results() {
        let g = uniform_random(300, 4, &mut rng_from_seed(7));
        for grain in [1usize, 7, 1024] {
            let cfg = SimBfsConfig {
                machine: small_machine(2),
                interleave: grain,
                ..Default::default()
            };
            check_depths(&g, &cfg, 0);
        }
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::empty(1);
        let r = simulate_bfs(
            &g,
            &SimBfsConfig {
                machine: small_machine(1),
                ..Default::default()
            },
            0,
        );
        assert_eq!(r.depths, vec![0]);
        assert_eq!(r.steps, 0);
    }
}
