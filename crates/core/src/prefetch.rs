//! Software prefetch (§III-C(3)).
//!
//! "While accessing Adj for the k-th vertex in BV_t^C, we issue _mm_prefetch
//! instructions to access the address (Adj + BV_t^C[k + PREF_DIST]) and the
//! list of neighbors into the L1 cache." Frontier-directed accesses are
//! invisible to the hardware prefetcher because consecutive frontier entries
//! point at unrelated addresses; telling the core about them `PREF_DIST`
//! iterations early hides the DRAM latency behind useful work.
//!
//! Default distance: the paper doesn't publish its `PREF_DIST`; 16 is a
//! conventional value for ~100 ns DRAM latency over ~5 ns per-iteration
//! work, and the ablation harness sweeps it.

/// Default prefetch distance in frontier entries.
pub const DEFAULT_PREFETCH_DISTANCE: usize = 16;

/// Hints the CPU to pull the cache line containing `data[index]` (if in
/// bounds) into L1. Out-of-range indices are ignored, so callers can issue
/// `k + PREF_DIST` unconditionally. A no-op on non-x86 targets.
#[inline]
pub fn prefetch_slice_element<T>(data: &[T], index: usize) {
    if index >= data.len() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: the pointer is in bounds (checked above); _mm_prefetch has
        // no side effects beyond cache hints and requires no alignment.
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                data.as_ptr().add(index) as *const i8,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = data;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_prefetch_is_harmless() {
        let v: Vec<u64> = (0..128).collect();
        for i in 0..v.len() {
            prefetch_slice_element(&v, i);
        }
        assert_eq!(v[17], 17); // data untouched
    }

    #[test]
    fn out_of_bounds_prefetch_is_ignored() {
        let v: Vec<u32> = vec![1, 2, 3];
        prefetch_slice_element(&v, 3);
        prefetch_slice_element(&v, usize::MAX);
    }

    #[test]
    fn empty_slice() {
        let v: Vec<u8> = Vec::new();
        prefetch_slice_element(&v, 0);
    }
}
