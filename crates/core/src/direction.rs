//! Direction-optimizing traversal: the per-level top-down / bottom-up
//! decision and the dense frontier bitmap the bottom-up kernel scans.
//!
//! The paper's engine always expands the frontier *top-down*: every frontier
//! vertex pushes its neighbors through the PBV/VIS/DP pipeline. On
//! low-diameter scale-free graphs the middle levels touch most edges
//! redundantly — nearly every neighbor is already visited. Direction-
//! optimizing BFS (Beamer, Asanović, Patterson, SC'12) flips those levels
//! *bottom-up*: scan the still-unvisited vertices and probe their neighbor
//! lists for any parent in the current frontier, stopping at the first hit.
//! A vertex with `k` frontier parents costs one edge check instead of `k`
//! claim attempts.
//!
//! The switch heuristic is the classic α/β rule:
//!
//! * top-down → bottom-up when `m_f > m_u / α` (the frontier's out-edges
//!   outgrow the unexplored edges by factor α);
//! * bottom-up → top-down when `n_f < n / β` (the frontier shrinks back
//!   below a 1/β fraction of all vertices).
//!
//! The defaults α = 15, β = 18 are the empirically tuned values from the
//! Beamer SC'12 paper, also used by the GAP benchmark suite reference
//! implementation.
//!
//! Bottom-up steps keep the substrate's §III-A story intact: the scan walks
//! vertex ranges in bin order (one `VIS`/`DP` partition at a time, the same
//! residency argument as Phase II), each vertex is claimed by exactly one
//! thread (ranges are disjoint), so `DP` writes stay single aligned stores
//! with no race at all — stronger than the benign claim race of the
//! top-down path.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::VertexId;

/// Default α (top-down → bottom-up trigger): Beamer SC'12 / GAP value.
pub const DEFAULT_ALPHA: f64 = 15.0;
/// Default β (bottom-up → top-down trigger): Beamer SC'12 / GAP value.
pub const DEFAULT_BETA: f64 = 18.0;

/// The kernel a BFS level ran (or is about to run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Expand the frontier through the two-phase PBV pipeline (Figure 3).
    #[default]
    TopDown,
    /// Scan unvisited vertex ranges, probing neighbors against the frontier
    /// bitmap.
    BottomUp,
}

impl Direction {
    /// Stable lowercase name used in traces and JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::TopDown => "top-down",
            Direction::BottomUp => "bottom-up",
        }
    }
}

/// Number of per-level direction changes in a run's step-direction log
/// (the `direction_switches` metric; 0 for forced policies and for runs
/// the adaptive policy kept in one kernel).
pub fn count_switches(dirs: &[Direction]) -> u64 {
    dirs.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

/// Per-level direction selection.
///
/// The engine default is [`ForcedTopDown`](DirectionPolicy::ForcedTopDown):
/// the paper's figure experiments measure the top-down pipeline, and the
/// bottom-up kernel requires the graph's doubled-edge symmetric convention
/// (out-neighbors = in-neighbors), which the engine cannot afford to verify
/// per build. Opt into [`auto`](DirectionPolicy::auto) for hybrid traversal
/// of undirected graphs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum DirectionPolicy {
    /// Beamer-style switching on the α/β thresholds above.
    Auto {
        /// Top-down → bottom-up when `frontier_edges > unexplored_edges / α`.
        alpha: f64,
        /// Bottom-up → top-down when `frontier_vertices < n / β`.
        beta: f64,
    },
    /// Every level top-down (the paper's engine, bit-for-bit).
    #[default]
    ForcedTopDown,
    /// Every level bottom-up (crossover measurement; pays the full
    /// unvisited scan even on tiny frontiers).
    ForcedBottomUp,
}

/// The per-level quantities the α/β rule consumes. All of them are computed
/// once per step from the accumulators every thread already maintains, so a
/// decision costs four relaxed loads and two float compares.
#[derive(Clone, Copy, Debug)]
pub struct DecisionInputs {
    /// `n_f`: vertices enqueued into the current frontier.
    pub frontier_vertices: u64,
    /// `m_f`: sum of out-degrees of the current frontier.
    pub frontier_edges: u64,
    /// `m_u`: directed edges incident to not-yet-claimed vertices
    /// (approximated as total minus explored; exact enough for a heuristic).
    pub unexplored_edges: u64,
    /// `n`: vertices in the graph.
    pub total_vertices: u64,
}

impl DirectionPolicy {
    /// [`DirectionPolicy::Auto`] with the Beamer/GAP default thresholds.
    pub fn auto() -> Self {
        DirectionPolicy::Auto {
            alpha: DEFAULT_ALPHA,
            beta: DEFAULT_BETA,
        }
    }

    /// Whether any level could run bottom-up (sizes the frontier bitmap:
    /// zero words for a forced-top-down engine).
    pub fn may_go_bottom_up(&self) -> bool {
        !matches!(self, DirectionPolicy::ForcedTopDown)
    }

    /// The direction for the level about to run, given the direction the
    /// previous level ran. Pure and deterministic: every thread evaluates it
    /// on the same inputs and reaches the same answer without communication.
    pub fn decide(&self, prev: Direction, i: DecisionInputs) -> Direction {
        match *self {
            DirectionPolicy::ForcedTopDown => Direction::TopDown,
            DirectionPolicy::ForcedBottomUp => Direction::BottomUp,
            DirectionPolicy::Auto { alpha, beta } => match prev {
                Direction::TopDown => {
                    if (i.frontier_edges as f64) * alpha.max(f64::MIN_POSITIVE)
                        > i.unexplored_edges as f64
                    {
                        Direction::BottomUp
                    } else {
                        Direction::TopDown
                    }
                }
                Direction::BottomUp => {
                    if (i.frontier_vertices as f64) * beta.max(f64::MIN_POSITIVE)
                        < i.total_vertices as f64
                    {
                        Direction::TopDown
                    } else {
                        Direction::BottomUp
                    }
                }
            },
        }
    }
}

/// Dense current-frontier bitmap for bottom-up steps: one bit per vertex,
/// shared across threads.
///
/// The sparse per-thread frontier lists stay the engine's source of truth;
/// at a direction switch (and on every bottom-up level) each thread ORs its
/// own list into the bitmap (sparse → dense) before the barrier, and clears
/// exactly those bits after the level's last read barrier — so the bitmap is
/// all-zero between steps and across session reuse, with no O(|V|) sweep
/// anywhere.
///
/// Bit layout follows vertex order, so a bin's bits are contiguous: scanning
/// vertex ranges in bin order keeps the probed window of the bitmap
/// cache-resident alongside the bin's `VIS`/`DP` stripe (§III-A).
pub struct FrontierBitmap {
    words: bfs_platform::MaybeHuge<AtomicU64>,
}

impl FrontierBitmap {
    /// A bitmap covering `n` vertices (all bits clear), heap-backed. `n = 0`
    /// is valid and allocates nothing — the forced-top-down engine's case.
    pub fn new(n: usize) -> Self {
        Self::new_backed(n, false)
    }

    /// [`FrontierBitmap::new`] with an explicit backing request: when
    /// `huge`, the bitmap is placed in a 2 MiB-aligned hugepage arena if the
    /// host supports it (silent heap fallback otherwise).
    pub fn new_backed(n: usize, huge: bool) -> Self {
        Self {
            words: bfs_platform::MaybeHuge::zeroed(n.div_ceil(64), huge),
        }
    }

    /// Whether the bitmap landed in a hugepage arena.
    pub fn is_hugepage_backed(&self) -> bool {
        self.words.is_huge()
    }

    /// Heap bytes held.
    pub fn footprint(&self) -> usize {
        self.words.len() * 8
    }

    /// Sets `v`'s bit (relaxed `fetch_or`; concurrent setters are fine).
    #[inline]
    pub fn set(&self, v: VertexId) {
        self.words[(v >> 6) as usize].fetch_or(1 << (v & 63), Ordering::Relaxed);
    }

    /// Reads `v`'s bit (relaxed; callers sequence the read after the
    /// publishing barrier).
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.words[(v >> 6) as usize].load(Ordering::Relaxed) & (1 << (v & 63)) != 0
    }

    /// ORs every vertex of `list` into the bitmap (the sparse → dense
    /// conversion; each thread converts its own frontier list).
    pub fn set_list(&self, list: &[VertexId]) {
        for &v in list {
            self.set(v);
        }
    }

    /// Clears every vertex of `list` (the O(frontier) un-publish that keeps
    /// the bitmap zero between steps without an O(|V|) sweep).
    pub fn clear_list(&self, list: &[VertexId]) {
        for &v in list {
            self.words[(v >> 6) as usize].fetch_and(!(1 << (v & 63)), Ordering::Relaxed);
        }
    }

    /// True when no bit is set (test hook for the clear protocol).
    pub fn is_clear(&self) -> bool {
        self.words.iter().all(|w| w.load(Ordering::Relaxed) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n_f: u64, m_f: u64, m_u: u64, n: u64) -> DecisionInputs {
        DecisionInputs {
            frontier_vertices: n_f,
            frontier_edges: m_f,
            unexplored_edges: m_u,
            total_vertices: n,
        }
    }

    #[test]
    fn forced_policies_ignore_inputs() {
        let i = inputs(1, 1, 1_000_000, 1_000_000);
        for prev in [Direction::TopDown, Direction::BottomUp] {
            assert_eq!(
                DirectionPolicy::ForcedTopDown.decide(prev, i),
                Direction::TopDown
            );
            assert_eq!(
                DirectionPolicy::ForcedBottomUp.decide(prev, i),
                Direction::BottomUp
            );
        }
    }

    #[test]
    fn auto_switches_down_on_heavy_frontier_and_back_on_light() {
        let p = DirectionPolicy::auto();
        // Frontier edges dwarf the unexplored remainder → go bottom-up.
        assert_eq!(
            p.decide(Direction::TopDown, inputs(100, 900, 1_000, 1_000)),
            Direction::BottomUp
        );
        // Tiny frontier early in the traversal → stay top-down.
        assert_eq!(
            p.decide(Direction::TopDown, inputs(1, 8, 1_000_000, 100_000)),
            Direction::TopDown
        );
        // Frontier shrinks below n/β → return to top-down.
        assert_eq!(
            p.decide(Direction::BottomUp, inputs(10, 80, 500, 100_000)),
            Direction::TopDown
        );
        // Frontier still covers most vertices → stay bottom-up.
        assert_eq!(
            p.decide(Direction::BottomUp, inputs(90_000, 100, 500, 100_000)),
            Direction::BottomUp
        );
    }

    #[test]
    fn default_policy_is_forced_top_down() {
        assert_eq!(DirectionPolicy::default(), DirectionPolicy::ForcedTopDown);
        assert!(!DirectionPolicy::default().may_go_bottom_up());
        assert!(DirectionPolicy::auto().may_go_bottom_up());
        assert!(DirectionPolicy::ForcedBottomUp.may_go_bottom_up());
    }

    #[test]
    fn bitmap_set_contains_clear_roundtrip() {
        let bm = FrontierBitmap::new(200);
        assert!(bm.is_clear());
        bm.set_list(&[0, 63, 64, 127, 199]);
        for v in [0u32, 63, 64, 127, 199] {
            assert!(bm.contains(v));
        }
        assert!(!bm.contains(1));
        assert!(!bm.contains(128));
        bm.clear_list(&[0, 63, 64, 127, 199]);
        assert!(bm.is_clear());
    }

    #[test]
    fn empty_bitmap_is_free() {
        let bm = FrontierBitmap::new(0);
        assert_eq!(bm.footprint(), 0);
        assert!(bm.is_clear());
    }

    #[test]
    fn direction_serializes_stably() {
        assert_eq!(Direction::TopDown.as_str(), "top-down");
        assert_eq!(Direction::BottomUp.as_str(), "bottom-up");
        let json = serde_json::to_string(&vec![Direction::TopDown, Direction::BottomUp]).unwrap();
        let back: Vec<Direction> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, vec![Direction::TopDown, Direction::BottomUp]);
    }
}
