//! The packed depth+parent (`DP`) array.
//!
//! §III-B: "Our algorithm stores the *depth* and *parent* of each vertex
//! together in an array, denoted by DP — initialized to INF." §III-A:
//! "Using 8/16/32/64-bits to represent the depth and parent values ensures
//! that the updates to DP are always consistent."
//!
//! Each entry is one 64-bit word — depth in the high 32 bits, parent in the
//! low 32 — written with a single `Relaxed` atomic store. A plain aligned
//! 8-byte `mov` is exactly what the paper relies on ("the underlying
//! architecture guarantees atomic reads/writes"); Rust expresses that legal
//! racy access as a relaxed atomic, which compiles to the same instruction
//! on x86-64. No read-modify-write (LOCK-prefixed) operation ever touches
//! this array in the atomic-free schemes.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::VertexId;

/// Depth value meaning "not yet assigned" (the paper's INF).
pub const INF_DEPTH: u32 = u32::MAX;

const INF_WORD: u64 = u64::MAX;

#[inline]
fn pack(depth: u32, parent: VertexId) -> u64 {
    ((depth as u64) << 32) | parent as u64
}

#[inline]
fn unpack(word: u64) -> (u32, VertexId) {
    ((word >> 32) as u32, word as u32)
}

/// The `DP` array: one atomic word per vertex.
pub struct DepthParent {
    words: Box<[AtomicU64]>,
}

impl DepthParent {
    /// All-INF array for `n` vertices.
    pub fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(INF_WORD));
        Self {
            words: v.into_boxed_slice(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when sized for zero vertices.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Resets every entry to INF (single-threaded, between runs).
    pub fn reset(&mut self) {
        for w in self.words.iter_mut() {
            *w.get_mut() = INF_WORD;
        }
    }

    /// True if `v` has been assigned a depth (racy snapshot; stable within a
    /// step for vertices assigned in earlier steps).
    #[inline]
    pub fn is_assigned(&self, v: VertexId) -> bool {
        self.words[v as usize].load(Ordering::Relaxed) != INF_WORD
    }

    /// Atomic-free claim: if `v` is unassigned, store `(depth, parent)` with
    /// a single relaxed store and return `true`.
    ///
    /// Two threads can both observe INF and both store — the benign race of
    /// §III-A: both run the same step, so both write the same depth (possibly
    /// different parents), and the BFS tree stays valid. The caller may
    /// therefore enqueue `v` twice; the paper measured ≤ 0.2% such
    /// duplicates.
    #[inline]
    pub fn claim_relaxed(&self, v: VertexId, depth: u32, parent: VertexId) -> bool {
        debug_assert_ne!(depth, INF_DEPTH);
        let w = &self.words[v as usize];
        if w.load(Ordering::Relaxed) != INF_WORD {
            return false;
        }
        w.store(pack(depth, parent), Ordering::Relaxed);
        true
    }

    /// Exactly-once claim via compare-exchange — the LOCK-prefixed update
    /// used by the atomic baseline (Figure 2(a)).
    #[inline]
    pub fn claim_atomic(&self, v: VertexId, depth: u32, parent: VertexId) -> bool {
        debug_assert_ne!(depth, INF_DEPTH);
        self.words[v as usize]
            .compare_exchange(
                INF_WORD,
                pack(depth, parent),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Unconditional store (used to seed the source vertex).
    #[inline]
    pub fn set(&self, v: VertexId, depth: u32, parent: VertexId) {
        self.words[v as usize].store(pack(depth, parent), Ordering::Relaxed);
    }

    /// `(depth, parent)` of `v`, or `None` if unassigned.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<(u32, VertexId)> {
        let w = self.words[v as usize].load(Ordering::Relaxed);
        (w != INF_WORD).then(|| unpack(w))
    }

    /// Depth of `v` (INF_DEPTH if unassigned).
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        match self.get(v) {
            Some((d, _)) => d,
            None => INF_DEPTH,
        }
    }

    /// Extracts plain `(depths, parents)` vectors (end of traversal).
    pub fn into_arrays(self) -> (Vec<u32>, Vec<VertexId>) {
        let mut depths = Vec::with_capacity(self.len());
        let mut parents = Vec::with_capacity(self.len());
        for w in self.words.iter() {
            let word = w.load(Ordering::Relaxed);
            if word == INF_WORD {
                depths.push(INF_DEPTH);
                parents.push(VertexId::MAX);
            } else {
                let (d, p) = unpack(word);
                depths.push(d);
                parents.push(p);
            }
        }
        (depths, parents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_inf() {
        let dp = DepthParent::new(4);
        assert_eq!(dp.len(), 4);
        assert!((0..4u32).all(|v| dp.get(v).is_none()));
        assert_eq!(dp.depth(2), INF_DEPTH);
    }

    #[test]
    fn claim_relaxed_first_wins_then_blocks() {
        let dp = DepthParent::new(2);
        assert!(dp.claim_relaxed(1, 3, 0));
        assert!(!dp.claim_relaxed(1, 4, 0));
        assert_eq!(dp.get(1), Some((3, 0)));
    }

    #[test]
    fn claim_atomic_is_exactly_once() {
        let dp = DepthParent::new(1);
        assert!(dp.claim_atomic(0, 1, 0));
        assert!(!dp.claim_atomic(0, 1, 0));
    }

    #[test]
    fn pack_unpack_roundtrip_extremes() {
        let dp = DepthParent::new(1);
        dp.set(0, 0, u32::MAX - 1);
        assert_eq!(dp.get(0), Some((0, u32::MAX - 1)));
        dp.set(0, u32::MAX - 1, 0);
        assert_eq!(dp.get(0), Some((u32::MAX - 1, 0)));
    }

    #[test]
    fn reset_restores_inf() {
        let mut dp = DepthParent::new(3);
        dp.set(1, 5, 2);
        dp.reset();
        assert!(dp.get(1).is_none());
    }

    #[test]
    fn into_arrays_matches_state() {
        let dp = DepthParent::new(3);
        dp.set(0, 0, 0);
        dp.set(2, 1, 0);
        let (d, p) = dp.into_arrays();
        assert_eq!(d, vec![0, INF_DEPTH, 1]);
        assert_eq!(p, vec![0, VertexId::MAX, 0]);
    }

    #[test]
    fn concurrent_same_step_claims_agree_on_depth() {
        // The benign race: many threads claim the same vertex with the same
        // depth but different parents. Afterwards the depth must be that
        // step's depth and the parent one of the claimants'.
        use std::sync::Arc;
        let dp = Arc::new(DepthParent::new(1));
        let handles: Vec<_> = (0..8u32)
            .map(|t| {
                let dp = Arc::clone(&dp);
                std::thread::spawn(move || dp.claim_relaxed(0, 7, t))
            })
            .collect();
        let wins = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&won| won)
            .count();
        assert!(wins >= 1, "at least one claim must succeed");
        let (d, p) = dp.get(0).unwrap();
        assert_eq!(d, 7);
        assert!(p < 8);
    }
}
