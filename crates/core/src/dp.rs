//! The packed depth+parent (`DP`) array, with epoch-stamped O(touched) reset.
//!
//! §III-B: "Our algorithm stores the *depth* and *parent* of each vertex
//! together in an array, denoted by DP — initialized to INF." §III-A:
//! "Using 8/16/32/64-bits to represent the depth and parent values ensures
//! that the updates to DP are always consistent."
//!
//! Each entry is one 64-bit word — written with a single `Relaxed` atomic
//! store. A plain aligned 8-byte `mov` is exactly what the paper relies on
//! ("the underlying architecture guarantees atomic reads/writes"); Rust
//! expresses that legal racy access as a relaxed atomic, which compiles to
//! the same instruction on x86-64. No read-modify-write (LOCK-prefixed)
//! operation ever touches this array in the atomic-free schemes.
//!
//! # Epoch stamps (query-session fast path)
//!
//! The word layout is `[stamp : E | depth : 32-E | parent : 32]`. A vertex
//! is *assigned* iff its stamp equals the array's current run epoch;
//! anything else — including all the stale words a previous run left behind
//! — reads as INF. [`DepthParent::advance_epoch`] therefore resets the whole
//! array in O(1): it just bumps the epoch. When the epoch counter would wrap
//! (after `2^E − 1` runs), the array is re-zeroed once — the documented
//! periodic O(|V|) cost that keeps stale stamps from aliasing a live epoch.
//!
//! This preserves the §III-A atomic-free argument unchanged: a claim is
//! still one relaxed load (stamp comparison) plus one relaxed aligned store
//! of the whole word. Two same-step racers write identical `(stamp, depth)`
//! bits and possibly different parents — the same benign race as before,
//! with the same "any claimant's parent is a valid BFS parent" resolution.
//!
//! `E` defaults to as many bits as fit above the depth field for the given
//! `|V|` (capped at [`MAX_EPOCH_BITS`]); depths can never exceed `|V| − 1`,
//! so the depth field only needs `ceil(log2(|V|))` bits.

use std::sync::atomic::{AtomicU64, Ordering};

use bfs_platform::MaybeHuge;

use crate::VertexId;

/// Depth value meaning "not yet assigned" (the paper's INF).
pub const INF_DEPTH: u32 = u32::MAX;

/// Most epoch bits an array will take by default: 2^16 − 1 warm runs between
/// full re-zeroes, leaving ≥ 16 bits of depth headroom.
pub const MAX_EPOCH_BITS: u32 = 16;

/// The `DP` array: one atomic word per vertex plus the current run epoch.
pub struct DepthParent {
    words: MaybeHuge<AtomicU64>,
    /// Stamp field width in bits (1..=31). The depth field gets `32 − E`.
    epoch_bits: u32,
    /// Current run epoch, in `1..=2^E − 1` (stamp 0 is "zeroed, never
    /// written").
    epoch: u64,
}

/// Epoch bits for an `n`-vertex array: everything the depth field does not
/// need, capped at [`MAX_EPOCH_BITS`], floor 1.
fn default_epoch_bits(n: usize) -> u32 {
    // Depths reach at most n − 1; bits_for(n - 1) = 64 - leading_zeros.
    let max_depth = n.saturating_sub(1) as u64;
    let depth_bits = (u64::BITS - max_depth.leading_zeros()).max(1);
    32u32.saturating_sub(depth_bits).clamp(1, MAX_EPOCH_BITS)
}

impl DepthParent {
    /// All-unassigned array for `n` vertices with the default stamp width,
    /// heap-backed.
    pub fn new(n: usize) -> Self {
        Self::new_backed(n, false)
    }

    /// [`DepthParent::new`] with an explicit backing request: when `huge`,
    /// the array is placed in a 2 MiB-aligned hugepage arena if the host
    /// supports it (silent heap fallback otherwise — see
    /// [`bfs_platform::MaybeHuge::zeroed`]).
    pub fn new_backed(n: usize, huge: bool) -> Self {
        Self::with_epoch_bits_backed(n, default_epoch_bits(n), huge)
    }

    /// All-unassigned array with an explicit stamp width (tests use tiny
    /// widths to exercise wraparound), heap-backed.
    ///
    /// # Panics
    /// Panics unless `1 <= epoch_bits <= 31` and depths up to `n − 1` fit in
    /// the remaining `32 − epoch_bits` bits.
    pub fn with_epoch_bits(n: usize, epoch_bits: u32) -> Self {
        Self::with_epoch_bits_backed(n, epoch_bits, false)
    }

    /// [`DepthParent::with_epoch_bits`] with an explicit backing request.
    ///
    /// # Panics
    /// Same contract as [`DepthParent::with_epoch_bits`].
    pub fn with_epoch_bits_backed(n: usize, epoch_bits: u32, huge: bool) -> Self {
        assert!(
            (1..=31).contains(&epoch_bits),
            "epoch_bits must be in 1..=31"
        );
        let depth_bits = 32 - epoch_bits;
        assert!(
            n.saturating_sub(1) < (1usize << depth_bits),
            "{n} vertices need deeper depth field than {depth_bits} bits"
        );
        Self {
            words: MaybeHuge::zeroed(n, huge),
            epoch_bits,
            epoch: 1,
        }
    }

    /// Whether the array landed in a hugepage arena.
    pub fn is_hugepage_backed(&self) -> bool {
        self.words.is_huge()
    }

    /// Stamp width in bits.
    pub fn epoch_bits(&self) -> u32 {
        self.epoch_bits
    }

    /// The current run epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when sized for zero vertices.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    #[inline]
    fn stamp_shift(&self) -> u32 {
        64 - self.epoch_bits
    }

    #[inline]
    fn pack(&self, depth: u32, parent: VertexId) -> u64 {
        debug_assert!(
            (depth as u64) < (1u64 << (32 - self.epoch_bits)),
            "depth {depth} overflows the {}-bit depth field",
            32 - self.epoch_bits
        );
        (self.epoch << self.stamp_shift()) | ((depth as u64) << 32) | parent as u64
    }

    #[inline]
    fn unpack(&self, word: u64) -> (u32, VertexId) {
        let depth_mask = (1u64 << (32 - self.epoch_bits)) - 1;
        (((word >> 32) & depth_mask) as u32, word as u32)
    }

    #[inline]
    fn is_current(&self, word: u64) -> bool {
        (word >> self.stamp_shift()) == self.epoch
    }

    /// O(1) between-runs reset: advances the run epoch so every stale entry
    /// reads as INF. Returns `true` when the stamp space wrapped and the
    /// array had to be fully re-zeroed (the periodic O(|V|) fallback).
    pub fn advance_epoch(&mut self) -> bool {
        let max_epoch = (1u64 << self.epoch_bits) - 1;
        if self.epoch == max_epoch {
            for w in self.words.iter_mut() {
                *w.get_mut() = 0;
            }
            self.epoch = 1;
            true
        } else {
            self.epoch += 1;
            false
        }
    }

    /// Full O(|V|) reset to the fresh state (single-threaded, between runs).
    pub fn reset(&mut self) {
        for w in self.words.iter_mut() {
            *w.get_mut() = 0;
        }
        self.epoch = 1;
    }

    /// True if `v` has been assigned a depth this run (racy snapshot; stable
    /// within a step for vertices assigned in earlier steps).
    #[inline]
    pub fn is_assigned(&self, v: VertexId) -> bool {
        self.is_current(self.words[v as usize].load(Ordering::Relaxed))
    }

    /// Atomic-free claim: if `v` is unassigned this run, store
    /// `(epoch, depth, parent)` with a single relaxed store and return
    /// `true`.
    ///
    /// Two threads can both observe a stale stamp and both store — the
    /// benign race of §III-A: both run the same step, so both write the same
    /// depth (possibly different parents), and the BFS tree stays valid. The
    /// caller may therefore enqueue `v` twice; the paper measured ≤ 0.2%
    /// such duplicates.
    #[inline]
    pub fn claim_relaxed(&self, v: VertexId, depth: u32, parent: VertexId) -> bool {
        debug_assert_ne!(depth, INF_DEPTH);
        let w = &self.words[v as usize];
        if self.is_current(w.load(Ordering::Relaxed)) {
            return false;
        }
        w.store(self.pack(depth, parent), Ordering::Relaxed);
        true
    }

    /// Exactly-once claim via compare-exchange — the LOCK-prefixed update
    /// used by the atomic baseline (Figure 2(a)).
    #[inline]
    pub fn claim_atomic(&self, v: VertexId, depth: u32, parent: VertexId) -> bool {
        debug_assert_ne!(depth, INF_DEPTH);
        let w = &self.words[v as usize];
        let mut cur = w.load(Ordering::Relaxed);
        loop {
            if self.is_current(cur) {
                return false;
            }
            match w.compare_exchange_weak(
                cur,
                self.pack(depth, parent),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Unconditional store (used to seed the source vertex).
    #[inline]
    pub fn set(&self, v: VertexId, depth: u32, parent: VertexId) {
        self.words[v as usize].store(self.pack(depth, parent), Ordering::Relaxed);
    }

    /// `(depth, parent)` of `v`, or `None` if unassigned this run.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<(u32, VertexId)> {
        let w = self.words[v as usize].load(Ordering::Relaxed);
        self.is_current(w).then(|| self.unpack(w))
    }

    /// Depth of `v` (INF_DEPTH if unassigned this run).
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        match self.get(v) {
            Some((d, _)) => d,
            None => INF_DEPTH,
        }
    }

    /// Copies the run's result into caller-owned `(depths, parents)` vectors
    /// (cleared first, capacity reused) — the zero-allocation extraction the
    /// warm session path uses.
    pub fn fill_arrays(&self, depths: &mut Vec<u32>, parents: &mut Vec<VertexId>) {
        depths.clear();
        parents.clear();
        depths.reserve(self.len());
        parents.reserve(self.len());
        for w in self.words.iter() {
            let word = w.load(Ordering::Relaxed);
            if self.is_current(word) {
                let (d, p) = self.unpack(word);
                depths.push(d);
                parents.push(p);
            } else {
                depths.push(INF_DEPTH);
                parents.push(VertexId::MAX);
            }
        }
    }

    /// Extracts plain `(depths, parents)` vectors (end of traversal).
    pub fn into_arrays(self) -> (Vec<u32>, Vec<VertexId>) {
        let mut depths = Vec::new();
        let mut parents = Vec::new();
        self.fill_arrays(&mut depths, &mut parents);
        (depths, parents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_inf() {
        let dp = DepthParent::new(4);
        assert_eq!(dp.len(), 4);
        assert!((0..4u32).all(|v| dp.get(v).is_none()));
        assert_eq!(dp.depth(2), INF_DEPTH);
    }

    #[test]
    fn claim_relaxed_first_wins_then_blocks() {
        let dp = DepthParent::new(2);
        assert!(dp.claim_relaxed(1, 3, 0));
        assert!(!dp.claim_relaxed(1, 4, 0));
        assert_eq!(dp.get(1), Some((3, 0)));
    }

    #[test]
    fn claim_atomic_is_exactly_once() {
        let dp = DepthParent::new(1);
        assert!(dp.claim_atomic(0, 1, 0));
        assert!(!dp.claim_atomic(0, 1, 0));
    }

    #[test]
    fn pack_unpack_roundtrip_extremes() {
        let dp = DepthParent::new(1);
        dp.set(0, 0, u32::MAX - 1);
        assert_eq!(dp.get(0), Some((0, u32::MAX - 1)));
        // Largest depth the default field for a 1-vertex array allows is 0;
        // exercise a big array's depth range instead.
        let big = DepthParent::new(1 << 20);
        let max_depth = (1u32 << (32 - big.epoch_bits())) - 1;
        big.set(7, max_depth, 3);
        assert_eq!(big.get(7), Some((max_depth, 3)));
    }

    #[test]
    fn reset_restores_inf() {
        let mut dp = DepthParent::new(3);
        dp.set(1, 5, 2);
        dp.reset();
        assert!(dp.get(1).is_none());
    }

    #[test]
    fn into_arrays_matches_state() {
        let dp = DepthParent::new(3);
        dp.set(0, 0, 0);
        dp.set(2, 1, 0);
        let (d, p) = dp.into_arrays();
        assert_eq!(d, vec![0, INF_DEPTH, 1]);
        assert_eq!(p, vec![0, VertexId::MAX, 0]);
    }

    #[test]
    fn advance_epoch_resets_in_o1() {
        let mut dp = DepthParent::new(8);
        dp.set(3, 2, 1);
        assert!(dp.is_assigned(3));
        assert!(!dp.advance_epoch(), "no wrap on the second epoch");
        assert!(!dp.is_assigned(3), "stale stamp must read as INF");
        assert_eq!(dp.depth(3), INF_DEPTH);
        // The vertex is claimable again in the new epoch.
        assert!(dp.claim_relaxed(3, 7, 0));
        assert_eq!(dp.get(3), Some((7, 0)));
    }

    #[test]
    fn tiny_stamp_width_wraps_with_full_rezero() {
        // E = 2 → epochs {1, 2, 3}; the third advance must wrap and re-zero.
        let mut dp = DepthParent::with_epoch_bits(4, 2);
        assert_eq!(dp.epoch(), 1);
        dp.set(0, 1, 0);
        assert!(!dp.advance_epoch()); // epoch 2
        assert!(!dp.advance_epoch()); // epoch 3
        dp.set(1, 2, 0);
        let wrapped = dp.advance_epoch(); // would be 4 == 2^2 → wrap
        assert!(wrapped, "stamp space exhausted, full re-zero expected");
        assert_eq!(dp.epoch(), 1);
        // Neither the epoch-1 write nor the epoch-3 write may leak through.
        assert!(dp.get(0).is_none());
        assert!(dp.get(1).is_none());
    }

    #[test]
    fn claims_stay_correct_across_many_epochs() {
        let mut dp = DepthParent::with_epoch_bits(4, 2);
        for run in 0..20u32 {
            assert!(dp.claim_relaxed(2, run % 3, 1), "run {run}");
            assert!(!dp.claim_relaxed(2, run % 3, 1));
            assert!(dp.claim_atomic(3, run % 3, 2));
            assert!(!dp.claim_atomic(3, run % 3, 2));
            dp.advance_epoch();
        }
    }

    #[test]
    fn default_epoch_bits_scale_with_size() {
        assert_eq!(DepthParent::new(1).epoch_bits(), MAX_EPOCH_BITS);
        assert_eq!(DepthParent::new(1 << 20).epoch_bits(), 12);
        // Near the marker-encoding ceiling the stamp narrows but survives.
        assert_eq!(DepthParent::new(1 << 30).epoch_bits(), 2);
        assert_eq!(DepthParent::new((1 << 31) - 1).epoch_bits(), 1);
    }

    #[test]
    #[should_panic(expected = "epoch_bits")]
    fn rejects_zero_epoch_bits() {
        DepthParent::with_epoch_bits(4, 0);
    }

    #[test]
    #[should_panic(expected = "depth field")]
    fn rejects_depth_field_too_narrow() {
        DepthParent::with_epoch_bits(1 << 20, 16);
    }

    #[test]
    fn fill_arrays_reuses_capacity() {
        let dp = DepthParent::new(100);
        dp.set(5, 1, 4);
        let mut d = Vec::new();
        let mut p = Vec::new();
        dp.fill_arrays(&mut d, &mut p);
        assert_eq!(d.len(), 100);
        assert_eq!(d[5], 1);
        assert_eq!(p[5], 4);
        let cap = d.capacity();
        dp.fill_arrays(&mut d, &mut p);
        assert_eq!(d.capacity(), cap, "second fill must not reallocate");
    }

    #[test]
    fn concurrent_same_step_claims_agree_on_depth() {
        // The benign race: many threads claim the same vertex with the same
        // depth but different parents. Afterwards the depth must be that
        // step's depth and the parent one of the claimants'.
        use std::sync::Arc;
        let dp = Arc::new(DepthParent::new(1));
        let handles: Vec<_> = (0..8u32)
            .map(|t| {
                let dp = Arc::clone(&dp);
                std::thread::spawn(move || dp.claim_relaxed(0, 0, t))
            })
            .collect();
        let wins = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&won| won)
            .count();
        assert!(wins >= 1, "at least one claim must succeed");
        let (d, p) = dp.get(0).unwrap();
        assert_eq!(d, 0);
        assert!(p < 8);
    }
}
