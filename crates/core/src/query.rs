//! The query dispatch seam: typed request kinds a server (or any other
//! front end) hands to a warm [`BfsSession`], with validation separated
//! from execution.
//!
//! The split matters for the serving path:
//!
//! * [`QueryKind::validate`] is cheap and needs only the vertex count, so a
//!   front end rejects malformed requests *before* they consume a slot in
//!   the admission queue — an out-of-range vertex costs an HTTP 422, never
//!   a panic inside the SPMD region.
//! * [`execute`] takes `&mut BfsSession` and a reusable [`BfsOutput`]: the
//!   dispatch thread that owns the session serializes queries by
//!   construction (the same discipline that makes the epoch-stamped resets
//!   race-free), and a warm request allocates nothing for traversal
//!   storage beyond the response rows it returns.
//!
//! Path reconstruction walks the parent chain produced by the traversal.
//! Parents from the parallel engine are racy-but-valid tree edges
//! (§III-A's benign race): `validate_bfs_tree` guarantees every parent
//! sits exactly one level shallower, so the walk from `dst` terminates at
//! `src` in exactly `depths[dst] + 1` vertices — the loop bound below is
//! defensive, not load-bearing.

use crate::engine::BfsOutput;
use crate::session::BfsSession;
use crate::{VertexId, INF_DEPTH};

/// Largest multi-source batch one request may carry; keeps a single POST
/// from monopolizing the dispatch thread.
pub const MAX_BATCH_SOURCES: usize = 1024;

/// One query-path request, already parsed but not yet validated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Run BFS from `src`; optionally also report one vertex's
    /// depth/parent from the resulting tree.
    Reach {
        src: VertexId,
        dst: Option<VertexId>,
    },
    /// Run BFS from `src` and reconstruct the tree path to `dst`.
    Path { src: VertexId, dst: VertexId },
    /// Run one BFS per source, in order.
    Batch { sources: Vec<VertexId> },
}

impl QueryKind {
    /// Checks every vertex id against the graph size (and the batch length
    /// against [`MAX_BATCH_SOURCES`]). Call before [`execute`]: execution
    /// panics on out-of-range sources, validation returns a typed error.
    pub fn validate(&self, num_vertices: usize) -> Result<(), QueryError> {
        let check = |v: VertexId| {
            if (v as usize) < num_vertices {
                Ok(())
            } else {
                Err(QueryError::VertexOutOfRange { v, num_vertices })
            }
        };
        match self {
            QueryKind::Reach { src, dst } => {
                check(*src)?;
                dst.map_or(Ok(()), check)
            }
            QueryKind::Path { src, dst } => {
                check(*src)?;
                check(*dst)
            }
            QueryKind::Batch { sources } => {
                if sources.is_empty() {
                    return Err(QueryError::EmptyBatch);
                }
                if sources.len() > MAX_BATCH_SOURCES {
                    return Err(QueryError::BatchTooLarge {
                        len: sources.len(),
                        max: MAX_BATCH_SOURCES,
                    });
                }
                sources.iter().copied().try_for_each(check)
            }
        }
    }
}

/// Why a request cannot be executed. All variants are client errors (the
/// request names work the graph cannot do), not server faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A vertex id at or past the graph's vertex count.
    VertexOutOfRange { v: VertexId, num_vertices: usize },
    /// A batch request with no sources.
    EmptyBatch,
    /// A batch request past [`MAX_BATCH_SOURCES`].
    BatchTooLarge { len: usize, max: usize },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::VertexOutOfRange { v, num_vertices } => {
                write!(f, "vertex {v} out of range (graph has {num_vertices})")
            }
            QueryError::EmptyBatch => write!(f, "batch has no sources"),
            QueryError::BatchTooLarge { len, max } => {
                write!(f, "batch of {len} sources exceeds the limit of {max}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// One vertex's position in a finished traversal's tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexInfo {
    pub vertex: VertexId,
    /// `None` when the traversal never reached the vertex.
    pub depth: Option<u32>,
    /// Tree parent; `None` when unreached (the source parents itself).
    pub parent: Option<VertexId>,
}

impl VertexInfo {
    fn from_output(out: &BfsOutput, v: VertexId) -> Self {
        let reached = out.depths[v as usize] != INF_DEPTH;
        VertexInfo {
            vertex: v,
            depth: reached.then(|| out.depths[v as usize]),
            parent: reached.then(|| out.parents[v as usize]),
        }
    }
}

/// One traversal's summary row (shared by single and batch responses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReachResult {
    pub src: VertexId,
    /// BFS depth (number of levels below the source).
    pub depth: u32,
    pub visited_vertices: u64,
    pub traversed_edges: u64,
    /// Filled only when the request asked about a specific vertex.
    pub dst: Option<VertexInfo>,
}

/// A reconstructed source-to-destination tree path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathResult {
    pub src: VertexId,
    pub dst: VertexId,
    /// Vertices from `src` to `dst` inclusive; empty when unreached.
    pub path: Vec<VertexId>,
}

impl PathResult {
    /// Whether the traversal reached `dst` at all.
    pub fn reached(&self) -> bool {
        !self.path.is_empty()
    }
}

/// What [`execute`] returns, mirroring the request kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    Reach(ReachResult),
    Path(PathResult),
    Batch(Vec<ReachResult>),
}

/// Runs a validated request against the session, reusing `out` for
/// traversal storage.
///
/// # Panics
/// Panics if the request was not validated and names an out-of-range
/// vertex.
pub fn execute(
    session: &mut BfsSession<'_>,
    kind: &QueryKind,
    out: &mut BfsOutput,
) -> QueryOutcome {
    let reach = |session: &mut BfsSession<'_>, out: &mut BfsOutput, src, dst: Option<VertexId>| {
        session.run_reusing(src, out);
        ReachResult {
            src,
            depth: out.stats.steps,
            visited_vertices: out.stats.visited_vertices,
            traversed_edges: out.stats.traversed_edges,
            dst: dst.map(|d| VertexInfo::from_output(out, d)),
        }
    };
    match kind {
        QueryKind::Reach { src, dst } => QueryOutcome::Reach(reach(session, out, *src, *dst)),
        QueryKind::Path { src, dst } => {
            session.run_reusing(*src, out);
            QueryOutcome::Path(PathResult {
                src: *src,
                dst: *dst,
                path: extract_path(out, *src, *dst),
            })
        }
        QueryKind::Batch { sources } => QueryOutcome::Batch(
            sources
                .iter()
                .map(|&s| reach(session, out, s, None))
                .collect(),
        ),
    }
}

/// Runs a coalesced wave of validated requests, handing each outcome to
/// `on_done(session, index, outcome)` as soon as it is ready. The shared
/// session reference lets the callback read per-request execution state
/// — in particular the just-finished traversal's level digest
/// ([`BfsSession::with_level_digest`]) before the next wave member
/// overwrites it (the flight-recorder hook).
///
/// This is the admission-coalescing seam: a server that finds several
/// single-source requests queued when a session frees up batches them
/// into one wave instead of round-tripping the dispatch machinery per
/// request. The traversal sequence is exactly what [`BfsSession::run_batch`]
/// would issue for the same sources — one warm `run_reusing` per request,
/// in order, against the same session state — so each outcome is
/// *identical* to serving that request alone (depths, counts, and parent
/// validity; parents themselves are §III-A's schedule-dependent benign
/// race with more than one lane). Unlike `run_batch` the wave reuses one
/// `BfsOutput` and fans results out incrementally, so waiters early in
/// the wave are answered before the tail finishes.
///
/// # Panics
/// Panics if any request was not validated and names an out-of-range
/// vertex.
pub fn execute_wave(
    session: &mut BfsSession<'_>,
    wave: &[QueryKind],
    out: &mut BfsOutput,
    mut on_done: impl FnMut(&BfsSession<'_>, usize, QueryOutcome),
) {
    for (i, kind) in wave.iter().enumerate() {
        let outcome = execute(session, kind, out);
        on_done(session, i, outcome);
    }
}

/// Walks the parent chain from `dst` back to `src` over a finished
/// traversal rooted at `src`. Returns the path source-first, or empty when
/// `dst` was not reached. The walk is bounded by `depths[dst] + 1` hops,
/// so a corrupted parent array can produce a wrong (empty) answer but
/// never an infinite loop.
pub fn extract_path(out: &BfsOutput, src: VertexId, dst: VertexId) -> Vec<VertexId> {
    if out.depths[dst as usize] == INF_DEPTH {
        return Vec::new();
    }
    let mut path = Vec::with_capacity(out.depths[dst as usize] as usize + 1);
    let mut v = dst;
    for _ in 0..=out.depths[dst as usize] {
        path.push(v);
        if v == src {
            path.reverse();
            return path;
        }
        v = out.parents[v as usize];
    }
    // The chain failed to land on the source inside the depth bound —
    // possible only with an invalid tree; report "no path" rather than lie.
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BfsOptions;
    use bfs_graph::gen::classic::{path as path_graph, star, two_cliques};
    use bfs_graph::gen::uniform::uniform_random;
    use bfs_graph::rng::rng_from_seed;
    use bfs_platform::Topology;

    fn session(g: &bfs_graph::CsrGraph) -> BfsSession<'_> {
        BfsSession::new(g, Topology::synthetic(1, 2), BfsOptions::default())
    }

    #[test]
    fn validate_catches_out_of_range_and_bad_batches() {
        let ok = QueryKind::Reach { src: 9, dst: None };
        assert_eq!(ok.validate(10), Ok(()));
        let bad = QueryKind::Reach { src: 10, dst: None };
        assert_eq!(
            bad.validate(10),
            Err(QueryError::VertexOutOfRange {
                v: 10,
                num_vertices: 10
            })
        );
        let bad_dst = QueryKind::Reach {
            src: 0,
            dst: Some(10),
        };
        assert!(bad_dst.validate(10).is_err());
        let bad_path = QueryKind::Path { src: 3, dst: 99 };
        assert!(bad_path.validate(10).is_err());
        assert_eq!(
            QueryKind::Batch { sources: vec![] }.validate(10),
            Err(QueryError::EmptyBatch)
        );
        let huge = QueryKind::Batch {
            sources: vec![0; MAX_BATCH_SOURCES + 1],
        };
        assert!(matches!(
            huge.validate(10),
            Err(QueryError::BatchTooLarge { .. })
        ));
        // Errors render a human-readable reason for the HTTP body.
        let msg = bad.validate(10).unwrap_err().to_string();
        assert!(msg.contains("10") && msg.contains("out of range"), "{msg}");
    }

    #[test]
    fn reach_reports_depths_and_optional_dst() {
        let g = path_graph(6); // 0-1-2-3-4-5
        let mut s = session(&g);
        let mut out = BfsOutput::default();
        let r = execute(
            &mut s,
            &QueryKind::Reach {
                src: 0,
                dst: Some(4),
            },
            &mut out,
        );
        let QueryOutcome::Reach(r) = r else {
            panic!("wrong outcome kind")
        };
        assert_eq!(r.src, 0);
        assert_eq!(r.depth, 5);
        assert_eq!(r.visited_vertices, 6);
        let d = r.dst.expect("dst info requested");
        assert_eq!(d.depth, Some(4));
        assert_eq!(d.parent, Some(3));
    }

    #[test]
    fn unreached_dst_reports_none() {
        let g = two_cliques(5, 5);
        let mut s = session(&g);
        let mut out = BfsOutput::default();
        let QueryOutcome::Reach(r) = execute(
            &mut s,
            &QueryKind::Reach {
                src: 0,
                dst: Some(7),
            },
            &mut out,
        ) else {
            panic!("wrong outcome kind")
        };
        let d = r.dst.unwrap();
        assert_eq!(d.depth, None);
        assert_eq!(d.parent, None);
    }

    #[test]
    fn path_walks_the_tree_and_handles_unreachable() {
        let g = path_graph(8);
        let mut s = session(&g);
        let mut out = BfsOutput::default();
        let QueryOutcome::Path(p) = execute(&mut s, &QueryKind::Path { src: 1, dst: 6 }, &mut out)
        else {
            panic!("wrong outcome kind")
        };
        assert!(p.reached());
        assert_eq!(p.path, vec![1, 2, 3, 4, 5, 6]);

        // src == dst: the one-vertex path.
        let QueryOutcome::Path(p) = execute(&mut s, &QueryKind::Path { src: 3, dst: 3 }, &mut out)
        else {
            panic!("wrong outcome kind")
        };
        assert_eq!(p.path, vec![3]);

        let g2 = two_cliques(4, 4);
        let mut s2 = session(&g2);
        let QueryOutcome::Path(p) = execute(&mut s2, &QueryKind::Path { src: 0, dst: 6 }, &mut out)
        else {
            panic!("wrong outcome kind")
        };
        assert!(!p.reached());
        assert!(p.path.is_empty());
    }

    #[test]
    fn path_endpoints_and_depth_agree_on_random_graphs() {
        let g = uniform_random(800, 5, &mut rng_from_seed(11));
        let mut s = session(&g);
        let mut out = BfsOutput::default();
        for (src, dst) in [(0u32, 799u32), (400, 3), (7, 7)] {
            let QueryOutcome::Path(p) = execute(&mut s, &QueryKind::Path { src, dst }, &mut out)
            else {
                panic!("wrong outcome kind")
            };
            if p.reached() {
                assert_eq!(p.path.first(), Some(&src));
                assert_eq!(p.path.last(), Some(&dst));
                assert_eq!(p.path.len() as u32, out.depths[dst as usize] + 1);
                // Every hop is a real edge of the graph.
                for w in p.path.windows(2) {
                    assert!(
                        g.neighbors(w[0]).contains(&w[1]),
                        "{} -> {} is not an edge",
                        w[0],
                        w[1]
                    );
                }
            } else {
                assert_eq!(out.depths[dst as usize], INF_DEPTH);
            }
        }
    }

    #[test]
    fn extract_path_handles_src_equals_dst_and_unreachable() {
        let g = path_graph(5);
        let mut s = session(&g);
        let mut out = BfsOutput::default();
        s.run_reusing(2, &mut out);
        // src == dst: the one-vertex path, even though the source's parent
        // is itself (the walk must stop on the vertex match, not the
        // parent chain).
        assert_eq!(extract_path(&out, 2, 2), vec![2]);
        assert_eq!(extract_path(&out, 2, 0), vec![2, 1, 0]);

        // Unreachable dst: INF_DEPTH short-circuits to an empty path.
        let g2 = two_cliques(3, 3);
        let mut s2 = session(&g2);
        s2.run_reusing(0, &mut out);
        assert_eq!(out.depths[4] as u32, INF_DEPTH);
        assert!(extract_path(&out, 0, 4).is_empty());
    }

    #[test]
    fn batch_and_path_edge_cases_survive_relabeling() {
        // Two cliques bridged at one end: vertices 0..=5 and 6..=11, with
        // the bridge 5-6, so every dst is reachable but through a graph
        // whose degree-ordered internal layout differs from external ids.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b));
                edges.push((a + 6, b + 6));
            }
        }
        edges.push((5, 6));
        let mut b = bfs_graph::builder::GraphBuilder::new(
            12,
            bfs_graph::builder::BuildOptions {
                symmetrize: true,
                dedup: true,
                drop_self_loops: true,
                sort_neighbors: true,
            },
        );
        b.add_edges(edges);
        let g = b.build();
        let (rg, perm) = bfs_graph::degree_order(&g);
        assert!(
            perm.forward()
                .iter()
                .enumerate()
                .any(|(e, &i)| e as u32 != i),
            "degree ordering must actually move vertices for this test"
        );

        let mut plain = session(&g);
        let mut relabeled = session(&rg);
        let mut out = BfsOutput::default();

        // The batch path answers in external ids: every row must match the
        // un-relabeled session's row exactly.
        let batch = QueryKind::Batch {
            sources: vec![0, 11, 5, 0],
        };
        let expect = execute(&mut plain, &batch, &mut out);
        let got = execute(&mut relabeled, &batch, &mut out);
        assert_eq!(got, expect);

        // dst reachable only through the bridge: the reconstructed path
        // must speak external ids (cross the 5-6 bridge), not internal
        // layout order.
        let QueryOutcome::Path(p) = execute(
            &mut relabeled,
            &QueryKind::Path { src: 0, dst: 11 },
            &mut out,
        ) else {
            panic!("wrong outcome kind")
        };
        assert!(p.reached());
        assert_eq!(p.path.first(), Some(&0));
        assert_eq!(p.path.last(), Some(&11));
        assert!(
            p.path.windows(2).any(|w| w == [5, 6]),
            "path must cross the external-id bridge: {:?}",
            p.path
        );
        for w in p.path.windows(2) {
            assert!(g.neighbors(w[0]).contains(&w[1]), "{:?} not an edge", w);
        }

        // src == dst and unreachable dst behave identically relabeled.
        let QueryOutcome::Path(p) = execute(
            &mut relabeled,
            &QueryKind::Path { src: 7, dst: 7 },
            &mut out,
        ) else {
            panic!("wrong outcome kind")
        };
        assert_eq!(p.path, vec![7]);

        let g2 = two_cliques(4, 4);
        let (rg2, _) = bfs_graph::degree_order(&g2);
        let mut s2 = session(&rg2);
        let QueryOutcome::Path(p) = execute(&mut s2, &QueryKind::Path { src: 0, dst: 7 }, &mut out)
        else {
            panic!("wrong outcome kind")
        };
        assert!(!p.reached());
    }

    #[test]
    fn wave_fans_out_each_outcome_in_order() {
        let g = path_graph(10);
        let mut s = session(&g);
        let mut out = BfsOutput::default();
        let wave = vec![
            QueryKind::Reach { src: 0, dst: None },
            QueryKind::Reach {
                src: 9,
                dst: Some(0),
            },
            QueryKind::Path { src: 3, dst: 6 },
        ];
        let mut seen = Vec::new();
        execute_wave(&mut s, &wave, &mut out, |session, i, o| {
            // The digest hook: each callback sees the traversal that
            // produced this outcome, before the next one overwrites it.
            assert!(session.with_level_digest(|log| !log.entries().is_empty()));
            seen.push((i, o));
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[2].0, 2);
        let QueryOutcome::Reach(r) = &seen[1].1 else {
            panic!("wrong outcome kind")
        };
        assert_eq!(r.dst.unwrap().depth, Some(9));
        let QueryOutcome::Path(p) = &seen[2].1 else {
            panic!("wrong outcome kind")
        };
        assert_eq!(p.path, vec![3, 4, 5, 6]);
        // One traversal per wave entry, same as run_batch would issue.
        assert_eq!(s.runs(), 3);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig {
            cases: 24,
            ..Default::default()
        })]
        /// The coalescing guarantee the admission layer leans on: a wave's
        /// outcomes are identical to serving the same queries one at a time
        /// on a fresh warm session, across sampled engine option combos and
        /// with or without degree-ordered relabeling. Single-lane topology:
        /// with one worker the §III-A parent race is quiesced, so "identical"
        /// here includes the parent arrays (and therefore the serialized
        /// response bytes a server would emit).
        #[test]
        fn wave_outcomes_match_individual_service(
            seed in 0u64..1000,
            relabel in proptest::any::<bool>(),
            vis_byte in proptest::any::<bool>(),
            forced_td in proptest::any::<bool>(),
            // dst values past the vertex count mean "no dst probe".
            picks in proptest::collection::vec((0u32..300, 0u32..330), 1..12),
        ) {
            use crate::engine::Scheduling;
            use crate::{DirectionPolicy, VisScheme};
            let g = uniform_random(300, 4, &mut rng_from_seed(seed));
            let (rg, _perm);
            let graph = if relabel {
                (rg, _perm) = bfs_graph::degree_order(&g);
                &rg
            } else {
                &g
            };
            let opts = crate::engine::BfsOptions {
                vis: if vis_byte { VisScheme::Byte } else { VisScheme::Bit },
                scheduling: if vis_byte {
                    Scheduling::NoMultiSocketOpt
                } else {
                    Scheduling::LoadBalanced
                },
                direction: if forced_td {
                    DirectionPolicy::ForcedTopDown
                } else {
                    DirectionPolicy::auto()
                },
                ..Default::default()
            };
            let topo = Topology::synthetic(1, 1);
            let wave: Vec<QueryKind> = picks
                .iter()
                .map(|&(src, dst)| match dst {
                    d if d >= 300 => QueryKind::Reach { src, dst: None },
                    d if d % 3 == 0 => QueryKind::Path { src, dst: d },
                    d => QueryKind::Reach { src, dst: Some(d) },
                })
                .collect();

            let mut coalesced = BfsSession::new(graph, topo, opts);
            let mut out = BfsOutput::default();
            let mut wave_outcomes: Vec<Option<QueryOutcome>> = vec![None; wave.len()];
            execute_wave(&mut coalesced, &wave, &mut out, |_, i, o| {
                wave_outcomes[i] = Some(o);
            });

            let mut solo = BfsSession::new(graph, topo, opts);
            for (kind, got) in wave.iter().zip(wave_outcomes.iter()) {
                let mut fresh = BfsOutput::default();
                let expect = execute(&mut solo, kind, &mut fresh);
                proptest::prop_assert_eq!(got.as_ref(), Some(&expect));
            }
        }
    }

    #[test]
    fn batch_returns_one_row_per_source_in_order() {
        let g = star(9);
        let mut s = session(&g);
        let mut out = BfsOutput::default();
        let QueryOutcome::Batch(rows) = execute(
            &mut s,
            &QueryKind::Batch {
                sources: vec![0, 5, 0],
            },
            &mut out,
        ) else {
            panic!("wrong outcome kind")
        };
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].src, 0);
        assert_eq!(rows[0].depth, 1);
        assert_eq!(rows[1].src, 5);
        assert_eq!(rows[2].src, 0);
        assert_eq!(s.runs(), 3);
    }
}
