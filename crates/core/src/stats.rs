//! Traversal statistics gathered by the parallel engines.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::direction::Direction;

/// Per-run statistics: the measurement side of §V.
///
/// # Frontier counting convention
///
/// `frontier_sizes` is indexed by depth: `frontier_sizes[0]` is always the
/// source frontier (size 1), and `frontier_sizes[d]` for `d ≥ 1` is the
/// number of vertices *enqueued* at depth `d` — duplicates from the benign
/// §III-A claim race included. Consequently:
///
/// * `steps == frontier_sizes.len() - 1` (the number of depth levels past
///   the source);
/// * `frontier_sizes[1..].sum() == visited_vertices - 1 + duplicate_enqueues`.
///
/// Engines stop logging at the first empty level, so every entry is > 0.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraversalStats {
    /// BFS steps executed (= depth of the traversal).
    pub steps: u32,
    /// Vertices assigned a depth, |V′|.
    pub visited_vertices: u64,
    /// Traversed edges, |E′| (sum of degrees of visited vertices — the
    /// Graph500 counting convention behind "edges per second").
    pub traversed_edges: u64,
    /// Enqueues per depth level, source included (see the type-level
    /// convention notes).
    pub frontier_sizes: Vec<u64>,
    /// Duplicate enqueues caused by the benign claim race (§III-A measured
    /// "an increase of up to 0.2% for small graphs").
    pub duplicate_enqueues: u64,
    /// Direction each level ran, aligned with `frontier_sizes[1..]`
    /// (`step_directions[i]` is the level that enqueued
    /// `frontier_sizes[i + 1]`). Empty for engines without a direction
    /// scheduler (baselines, the simulator).
    pub step_directions: Vec<Direction>,
    /// Neighbor probes performed by bottom-up levels (the bottom-up
    /// analogue of traversed edges; 0 for all-top-down runs).
    pub bottom_up_edge_checks: u64,
    /// Wall time in Phase I across steps.
    pub phase1_time: Duration,
    /// Wall time in Phase II across steps.
    pub phase2_time: Duration,
    /// Wall time rearranging frontiers.
    pub rearrange_time: Duration,
    /// Total wall time of the traversal.
    pub total_time: Duration,
    /// Instruction-proxy count for the binning kernel (SIMD ablation).
    pub binning_ops: u64,
}

impl TraversalStats {
    /// Million traversed edges per second (the paper's headline metric).
    ///
    /// Convention: a zero-duration run reports `0.0`, not infinity — a
    /// clock too coarse to see the traversal measured *nothing*, and 0.0
    /// stays finite through downstream aggregation (JSON reports, harmonic
    /// means) where an infinity would poison every sum it touches.
    pub fn mteps(&self) -> f64 {
        let secs = self.total_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.traversed_edges as f64 / secs / 1e6
    }

    /// Number of levels that ran bottom-up.
    pub fn bottom_up_steps(&self) -> u32 {
        self.step_directions
            .iter()
            .filter(|&&d| d == Direction::BottomUp)
            .count() as u32
    }

    /// ρ′ = |E′| / |V′|.
    pub fn rho_prime(&self) -> f64 {
        if self.visited_vertices == 0 {
            0.0
        } else {
            self.traversed_edges as f64 / self.visited_vertices as f64
        }
    }

    /// Fraction of enqueues that were duplicates.
    pub fn duplicate_rate(&self) -> f64 {
        if self.visited_vertices == 0 {
            0.0
        } else {
            self.duplicate_enqueues as f64 / self.visited_vertices as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mteps_math() {
        let s = TraversalStats {
            traversed_edges: 10_000_000,
            total_time: Duration::from_secs(2),
            ..Default::default()
        };
        assert!((s.mteps() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_is_zero_rate() {
        // The documented convention: un-measurable runs report 0.0 MTEPS so
        // aggregates (means, JSON artifacts) stay finite.
        let s = TraversalStats {
            traversed_edges: 12345,
            ..Default::default()
        };
        assert_eq!(s.total_time, Duration::ZERO);
        assert_eq!(s.mteps(), 0.0);
        assert_eq!(s.rho_prime(), 0.0);
        assert_eq!(s.duplicate_rate(), 0.0);
    }

    #[test]
    fn bottom_up_step_counting() {
        let s = TraversalStats {
            step_directions: vec![
                Direction::TopDown,
                Direction::BottomUp,
                Direction::BottomUp,
                Direction::TopDown,
            ],
            ..Default::default()
        };
        assert_eq!(s.bottom_up_steps(), 2);
        assert_eq!(TraversalStats::default().bottom_up_steps(), 0);
    }

    #[test]
    fn rho_and_duplicates() {
        let s = TraversalStats {
            visited_vertices: 100,
            traversed_edges: 1600,
            duplicate_enqueues: 2,
            ..Default::default()
        };
        assert!((s.rho_prime() - 16.0).abs() < 1e-12);
        assert!((s.duplicate_rate() - 0.02).abs() < 1e-12);
    }
}
