//! Re-implementations of prior work used as comparison points.
//!
//! §V compares against the previous best reported numbers, re-measured "on
//! our system" — the methodology reproduced here by implementing the
//! competing algorithms on the same substrate:
//!
//! * [`atomic_parallel_bfs`] — the Agarwal et al. scheme (the paper's main
//!   comparison, Figure 6): level-synchronous parallel BFS with a **bit
//!   vector updated by LOCK-prefixed atomic OR** and exactly-once vertex
//!   claims, shared frontier chunks, and no locality-aware placement,
//!   binning, rearrangement, SIMD or prefetch.
//! * [`no_vis_parallel_bfs`] — the "no VIS array" series of Figure 4:
//!   identical structure but every edge checks the `DP` word directly.

use bfs_graph::CsrGraph;
use bfs_platform::{SocketPool, Topology};
use bfs_trace::{NoopSink, RunEvent, StepEvent, ThreadStep, TraceEvent, TraceSink};

use crate::balance::{divide_even, Stream};
use crate::cell::ThreadOwned;
use crate::dp::{DepthParent, INF_DEPTH};
use crate::engine::BfsOutput;
use crate::stats::TraversalStats;
use crate::vis::{Vis, VisScheme};
use crate::VertexId;

/// Agarwal-style atomic-bitmap BFS: test-first bitmap probes with a LOCK
/// `fetch_or` claim per vertex (their tuned protocol), shared frontier, no
/// locality machinery.
pub fn atomic_parallel_bfs(graph: &CsrGraph, topology: Topology, source: VertexId) -> BfsOutput {
    flat_parallel_bfs(graph, topology, source, VisScheme::AtomicBitTest, &NoopSink)
}

/// [`atomic_parallel_bfs`] with per-step events into `sink`.
pub fn atomic_parallel_bfs_traced(
    graph: &CsrGraph,
    topology: Topology,
    source: VertexId,
    sink: &dyn TraceSink,
) -> BfsOutput {
    flat_parallel_bfs(graph, topology, source, VisScheme::AtomicBitTest, sink)
}

/// The literal Figure 2(a) variant: a LOCK `fetch_or` per edge.
pub fn atomic_per_edge_parallel_bfs(
    graph: &CsrGraph,
    topology: Topology,
    source: VertexId,
) -> BfsOutput {
    flat_parallel_bfs(graph, topology, source, VisScheme::AtomicBit, &NoopSink)
}

/// Direct-DP parallel BFS (no VIS filter at all).
pub fn no_vis_parallel_bfs(graph: &CsrGraph, topology: Topology, source: VertexId) -> BfsOutput {
    flat_parallel_bfs(graph, topology, source, VisScheme::None, &NoopSink)
}

/// [`no_vis_parallel_bfs`] with per-step events into `sink`.
pub fn no_vis_parallel_bfs_traced(
    graph: &CsrGraph,
    topology: Topology,
    source: VertexId,
    sink: &dyn TraceSink,
) -> BfsOutput {
    flat_parallel_bfs(graph, topology, source, VisScheme::None, sink)
}

fn baseline_name(scheme: VisScheme) -> &'static str {
    match scheme {
        VisScheme::AtomicBitTest => "baseline-atomic",
        VisScheme::AtomicBit => "baseline-atomic-per-edge",
        VisScheme::None => "baseline-no-vis",
        VisScheme::Byte => "baseline-byte",
        VisScheme::Bit => "baseline-bit",
    }
}

/// Shared skeleton: level-synchronous expansion with per-thread output
/// queues and even frontier chunking — the structure of prior multicore BFS
/// work, without any of the paper's locality machinery.
fn flat_parallel_bfs(
    graph: &CsrGraph,
    topology: Topology,
    source: VertexId,
    scheme: VisScheme,
    sink: &dyn TraceSink,
) -> BfsOutput {
    topology.validate();
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let t0 = std::time::Instant::now();
    let nthreads = topology.total_threads();
    let tracing = sink.enabled();
    if tracing {
        sink.record(&TraceEvent::Run(RunEvent {
            engine: baseline_name(scheme).to_string(),
            vertices: n as u64,
            edges: graph.num_edges(),
            source,
            sockets: topology.sockets,
            lanes_per_socket: topology.lanes_per_socket,
            threads: nthreads,
            n_vis: None,
            n_pbv: None,
            encoding: None,
            scheduling: None,
            vis: Some(format!("{scheme:?}")),
            nodes: None,
        }));
    }
    let dp = DepthParent::new(n);
    let vis = Vis::new(scheme, n);
    dp.set(source, 0, source);
    vis.mark(source);

    let bv_cur = ThreadOwned::from_fn(nthreads, |t| if t == 0 { vec![source] } else { Vec::new() });
    let bv_next: ThreadOwned<Vec<VertexId>> = ThreadOwned::from_fn(nthreads, |_| Vec::new());
    let totals = [
        std::sync::atomic::AtomicU64::new(0),
        std::sync::atomic::AtomicU64::new(0),
    ];
    // Per-thread (expansion nanos, enqueued) for the leader's step event.
    let step_scratch: ThreadOwned<(u64, u64)> = ThreadOwned::from_fn(nthreads, |_| (0, 0));
    // `frontier_sizes[0]` is the source frontier (see `TraversalStats`).
    let frontier_log = crate::engine::parking_lot_free_log(n);
    frontier_log.with_mut(0, |log| log.push(1));

    let pool = SocketPool::new(topology);
    let enqueued: Vec<u64> = pool.run(|ctx| {
        use std::sync::atomic::Ordering;
        let tid = ctx.thread_id;
        let mut my_enqueued = 0u64;
        let mut step = 1u32;
        loop {
            assert!(step <= n as u32 + 1, "BFS failed to terminate");
            if tid == 0 {
                totals[(step & 1) as usize].store(0, Ordering::Relaxed);
            }
            ctx.barrier();
            let expand_t0 = tracing.then(std::time::Instant::now);
            let streams: Vec<Stream> = (0..nthreads)
                .map(|t| Stream {
                    bin: t,
                    owner: t,
                    len: bv_cur.read(t, |f| f.len()),
                })
                .collect();
            let segments = divide_even(&streams, nthreads, 1).swap_remove(tid);
            let mine = bv_next.with_mut(tid, |next| {
                for seg in &segments {
                    bv_cur.read(seg.owner, |frontier| {
                        for &u in &frontier[seg.range.clone()] {
                            for &v in graph.neighbors(u) {
                                match scheme {
                                    VisScheme::AtomicBit | VisScheme::AtomicBitTest => {
                                        // LOCK OR claims exactly once; DP
                                        // write needs no guard.
                                        if !vis.definitely_visited_or_mark(v) {
                                            dp.set(v, step, u);
                                            next.push(v);
                                        }
                                    }
                                    _ => {
                                        if dp.claim_atomic(v, step, u) {
                                            next.push(v);
                                        }
                                    }
                                }
                            }
                        }
                    });
                }
                next.len() as u64
            });
            my_enqueued += mine;
            if let Some(t) = expand_t0 {
                step_scratch.with_mut(tid, |s| *s = (t.elapsed().as_nanos() as u64, mine));
            }
            totals[(step & 1) as usize].fetch_add(mine, Ordering::Relaxed);
            ctx.barrier();
            let total = totals[(step & 1) as usize].load(Ordering::Relaxed);
            if tid == 0 && total > 0 {
                frontier_log.with_mut(0, |log| log.push(total));
                if tracing {
                    emit_baseline_step(sink, step, total, nthreads, &step_scratch, &dp, n);
                }
            }
            bv_cur.with_mut(tid, |cur| {
                bv_next.with_mut(tid, |next| {
                    std::mem::swap(cur, next);
                    next.clear();
                });
            });
            ctx.barrier();
            if total == 0 {
                break;
            }
            step += 1;
        }
        my_enqueued
    });

    let total_time = t0.elapsed();
    let (depths, parents) = dp.into_arrays();
    let mut visited = 0u64;
    let mut traversed = 0u64;
    let mut max_depth = 0u32;
    #[allow(clippy::needless_range_loop)] // v is a vertex id used against two arrays
    for v in 0..n {
        if depths[v] != INF_DEPTH {
            visited += 1;
            traversed += graph.degree(v as u32) as u64;
            max_depth = max_depth.max(depths[v]);
        }
    }
    let enq: u64 = enqueued.iter().sum();
    let frontier_sizes: Vec<u64> = frontier_log.with_mut(0, std::mem::take);
    debug_assert_eq!(frontier_sizes.len() as u32 - 1, max_depth);
    BfsOutput {
        depths,
        parents,
        stats: TraversalStats {
            steps: max_depth,
            visited_vertices: visited,
            traversed_edges: traversed,
            duplicate_enqueues: (enq + 1).saturating_sub(visited),
            frontier_sizes,
            total_time,
            ..Default::default()
        },
    }
}

/// Baseline step event: expansion time reported as `phase1_ns` (the flat
/// skeleton has no Phase II or rearrangement), no bin occupancy.
fn emit_baseline_step(
    sink: &dyn TraceSink,
    step: u32,
    total: u64,
    nthreads: usize,
    step_scratch: &ThreadOwned<(u64, u64)>,
    dp: &DepthParent,
    n: usize,
) {
    let threads: Vec<ThreadStep> = (0..nthreads)
        .map(|t| {
            step_scratch.read(t, |&(expand_ns, enqueued)| ThreadStep {
                thread: t,
                phase1_ns: expand_ns,
                phase2_ns: 0,
                rearrange_ns: 0,
                enqueued,
                edge_checks: 0,
            })
        })
        .collect();
    let claimed = (0..n as u32).filter(|&v| dp.depth(v) == step).count() as u64;
    sink.record(&TraceEvent::Step(StepEvent {
        step,
        frontier: total,
        duplicates: total.saturating_sub(claimed),
        direction: None,
        threads,
        bin_occupancy: Vec::new(),
        scattered: None,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use crate::validate::validate_bfs_tree;
    use bfs_graph::gen::classic::{lollipop, path};
    use bfs_graph::gen::rmat::{rmat, RmatConfig};
    use bfs_graph::gen::uniform::uniform_random;
    use bfs_graph::rng::rng_from_seed;

    #[test]
    fn atomic_baseline_matches_serial() {
        let g = uniform_random(1500, 8, &mut rng_from_seed(1));
        let out = atomic_parallel_bfs(&g, Topology::synthetic(2, 2), 0);
        let r = serial_bfs(&g, 0);
        assert_eq!(out.depths, r.depths);
        validate_bfs_tree(&g, 0, &out.depths, &out.parents).unwrap();
        // Atomic claims are exactly-once: no duplicates possible.
        assert_eq!(out.stats.duplicate_enqueues, 0);
    }

    #[test]
    fn no_vis_baseline_matches_serial() {
        let g = rmat(&RmatConfig::paper(10, 4), &mut rng_from_seed(2));
        let src = bfs_graph::stats::nth_non_isolated(&g, 0).unwrap();
        let out = no_vis_parallel_bfs(&g, Topology::synthetic(2, 2), src);
        let r = serial_bfs(&g, src);
        assert_eq!(out.depths, r.depths);
        validate_bfs_tree(&g, src, &out.depths, &out.parents).unwrap();
    }

    #[test]
    fn classic_shapes() {
        for g in [path(9), lollipop(5, 7)] {
            let out = atomic_parallel_bfs(&g, Topology::synthetic(1, 4), 0);
            let r = serial_bfs(&g, 0);
            assert_eq!(out.depths, r.depths);
            assert_eq!(out.stats.steps, r.max_depth);
        }
    }

    #[test]
    fn frontier_sizes_follow_the_convention() {
        let g = uniform_random(900, 6, &mut rng_from_seed(7));
        let out = atomic_parallel_bfs(&g, Topology::synthetic(2, 2), 0);
        assert_eq!(out.stats.frontier_sizes[0], 1);
        assert_eq!(
            out.stats.steps,
            out.stats.frontier_sizes.len() as u32 - 1,
            "steps must count depth levels past the source"
        );
        assert!(out.stats.frontier_sizes.iter().all(|&f| f > 0));
        let sum: u64 = out.stats.frontier_sizes[1..].iter().sum();
        assert_eq!(
            sum,
            out.stats.visited_vertices - 1 + out.stats.duplicate_enqueues
        );
    }

    #[test]
    fn traced_baseline_emits_run_and_step_events() {
        use bfs_trace::RingSink;
        let g = uniform_random(1200, 8, &mut rng_from_seed(5));
        let ring = RingSink::new(4096);
        let out = atomic_parallel_bfs_traced(&g, Topology::synthetic(2, 2), 0, &ring);
        let events = ring.into_events();
        let runs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Run(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].engine, "baseline-atomic");
        assert_eq!(runs[0].vertices, 1200);
        assert_eq!(runs[0].n_pbv, None);
        let steps: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Step(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(steps.len() as u32, out.stats.steps);
        for (i, s) in steps.iter().enumerate() {
            assert_eq!(s.step, i as u32 + 1);
            assert_eq!(s.frontier, out.stats.frontier_sizes[i + 1]);
            assert_eq!(s.threads.len(), 4);
            let enq: u64 = s.threads.iter().map(|t| t.enqueued).sum();
            assert_eq!(enq, s.frontier);
            assert!(s.bin_occupancy.is_empty());
            assert_eq!(s.duplicates, 0, "atomic claims are exactly-once");
        }
    }

    #[test]
    fn stats_counts_match_serial() {
        let g = uniform_random(600, 4, &mut rng_from_seed(3));
        let out = atomic_parallel_bfs(&g, Topology::synthetic(2, 2), 0);
        let r = serial_bfs(&g, 0);
        assert_eq!(out.stats.visited_vertices, r.visited);
        assert_eq!(out.stats.traversed_edges, r.traversed_edges);
    }
}
