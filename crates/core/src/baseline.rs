//! Re-implementations of prior work used as comparison points.
//!
//! §V compares against the previous best reported numbers, re-measured "on
//! our system" — the methodology reproduced here by implementing the
//! competing algorithms on the same substrate:
//!
//! * [`atomic_parallel_bfs`] — the Agarwal et al. scheme (the paper's main
//!   comparison, Figure 6): level-synchronous parallel BFS with a **bit
//!   vector updated by LOCK-prefixed atomic OR** and exactly-once vertex
//!   claims, shared frontier chunks, and no locality-aware placement,
//!   binning, rearrangement, SIMD or prefetch.
//! * [`no_vis_parallel_bfs`] — the "no VIS array" series of Figure 4:
//!   identical structure but every edge checks the `DP` word directly.

use bfs_graph::CsrGraph;
use bfs_platform::{SocketPool, Topology};

use crate::balance::{divide_even, Stream};
use crate::cell::ThreadOwned;
use crate::dp::{DepthParent, INF_DEPTH};
use crate::engine::BfsOutput;
use crate::stats::TraversalStats;
use crate::vis::{Vis, VisScheme};
use crate::VertexId;

/// Agarwal-style atomic-bitmap BFS: test-first bitmap probes with a LOCK
/// `fetch_or` claim per vertex (their tuned protocol), shared frontier, no
/// locality machinery.
pub fn atomic_parallel_bfs(graph: &CsrGraph, topology: Topology, source: VertexId) -> BfsOutput {
    flat_parallel_bfs(graph, topology, source, VisScheme::AtomicBitTest)
}

/// The literal Figure 2(a) variant: a LOCK `fetch_or` per edge.
pub fn atomic_per_edge_parallel_bfs(
    graph: &CsrGraph,
    topology: Topology,
    source: VertexId,
) -> BfsOutput {
    flat_parallel_bfs(graph, topology, source, VisScheme::AtomicBit)
}

/// Direct-DP parallel BFS (no VIS filter at all).
pub fn no_vis_parallel_bfs(graph: &CsrGraph, topology: Topology, source: VertexId) -> BfsOutput {
    flat_parallel_bfs(graph, topology, source, VisScheme::None)
}

/// Shared skeleton: level-synchronous expansion with per-thread output
/// queues and even frontier chunking — the structure of prior multicore BFS
/// work, without any of the paper's locality machinery.
fn flat_parallel_bfs(
    graph: &CsrGraph,
    topology: Topology,
    source: VertexId,
    scheme: VisScheme,
) -> BfsOutput {
    topology.validate();
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let t0 = std::time::Instant::now();
    let nthreads = topology.total_threads();
    let dp = DepthParent::new(n);
    let vis = Vis::new(scheme, n);
    dp.set(source, 0, source);
    vis.mark(source);

    let bv_cur = ThreadOwned::from_fn(nthreads, |t| {
        if t == 0 {
            vec![source]
        } else {
            Vec::new()
        }
    });
    let bv_next: ThreadOwned<Vec<VertexId>> = ThreadOwned::from_fn(nthreads, |_| Vec::new());
    let totals = [
        std::sync::atomic::AtomicU64::new(0),
        std::sync::atomic::AtomicU64::new(0),
    ];

    let pool = SocketPool::new(topology);
    let enqueued: Vec<u64> = pool.run(|ctx| {
        use std::sync::atomic::Ordering;
        let tid = ctx.thread_id;
        let mut my_enqueued = 0u64;
        let mut step = 1u32;
        loop {
            assert!(step <= n as u32 + 1, "BFS failed to terminate");
            if tid == 0 {
                totals[(step & 1) as usize].store(0, Ordering::Relaxed);
            }
            ctx.barrier();
            let streams: Vec<Stream> = (0..nthreads)
                .map(|t| Stream {
                    bin: t,
                    owner: t,
                    len: bv_cur.read(t, |f| f.len()),
                })
                .collect();
            let segments = divide_even(&streams, nthreads, 1).swap_remove(tid);
            let mine = bv_next.with_mut(tid, |next| {
                for seg in &segments {
                    bv_cur.read(seg.owner, |frontier| {
                        for &u in &frontier[seg.range.clone()] {
                            for &v in graph.neighbors(u) {
                                match scheme {
                                    VisScheme::AtomicBit | VisScheme::AtomicBitTest => {
                                        // LOCK OR claims exactly once; DP
                                        // write needs no guard.
                                        if !vis.definitely_visited_or_mark(v) {
                                            dp.set(v, step, u);
                                            next.push(v);
                                        }
                                    }
                                    _ => {
                                        if dp.claim_atomic(v, step, u) {
                                            next.push(v);
                                        }
                                    }
                                }
                            }
                        }
                    });
                }
                next.len() as u64
            });
            my_enqueued += mine;
            totals[(step & 1) as usize].fetch_add(mine, Ordering::Relaxed);
            ctx.barrier();
            let total = totals[(step & 1) as usize].load(Ordering::Relaxed);
            bv_cur.with_mut(tid, |cur| {
                bv_next.with_mut(tid, |next| {
                    std::mem::swap(cur, next);
                    next.clear();
                });
            });
            ctx.barrier();
            if total == 0 {
                break;
            }
            step += 1;
        }
        my_enqueued
    });

    let total_time = t0.elapsed();
    let (depths, parents) = dp.into_arrays();
    let mut visited = 0u64;
    let mut traversed = 0u64;
    let mut max_depth = 0u32;
    #[allow(clippy::needless_range_loop)] // v is a vertex id used against two arrays
    for v in 0..n {
        if depths[v] != INF_DEPTH {
            visited += 1;
            traversed += graph.degree(v as u32) as u64;
            max_depth = max_depth.max(depths[v]);
        }
    }
    let enq: u64 = enqueued.iter().sum();
    BfsOutput {
        depths,
        parents,
        stats: TraversalStats {
            steps: max_depth,
            visited_vertices: visited,
            traversed_edges: traversed,
            duplicate_enqueues: (enq + 1).saturating_sub(visited),
            frontier_sizes: Vec::new(),
            total_time,
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use crate::validate::validate_bfs_tree;
    use bfs_graph::gen::classic::{lollipop, path};
    use bfs_graph::gen::rmat::{rmat, RmatConfig};
    use bfs_graph::gen::uniform::uniform_random;
    use bfs_graph::rng::rng_from_seed;

    #[test]
    fn atomic_baseline_matches_serial() {
        let g = uniform_random(1500, 8, &mut rng_from_seed(1));
        let out = atomic_parallel_bfs(&g, Topology::synthetic(2, 2), 0);
        let r = serial_bfs(&g, 0);
        assert_eq!(out.depths, r.depths);
        validate_bfs_tree(&g, 0, &out.depths, &out.parents).unwrap();
        // Atomic claims are exactly-once: no duplicates possible.
        assert_eq!(out.stats.duplicate_enqueues, 0);
    }

    #[test]
    fn no_vis_baseline_matches_serial() {
        let g = rmat(&RmatConfig::paper(10, 4), &mut rng_from_seed(2));
        let src = bfs_graph::stats::nth_non_isolated(&g, 0).unwrap();
        let out = no_vis_parallel_bfs(&g, Topology::synthetic(2, 2), src);
        let r = serial_bfs(&g, src);
        assert_eq!(out.depths, r.depths);
        validate_bfs_tree(&g, src, &out.depths, &out.parents).unwrap();
    }

    #[test]
    fn classic_shapes() {
        for g in [path(9), lollipop(5, 7)] {
            let out = atomic_parallel_bfs(&g, Topology::synthetic(1, 4), 0);
            let r = serial_bfs(&g, 0);
            assert_eq!(out.depths, r.depths);
            assert_eq!(out.stats.steps, r.max_depth);
        }
    }

    #[test]
    fn stats_counts_match_serial() {
        let g = uniform_random(600, 4, &mut rng_from_seed(3));
        let out = atomic_parallel_bfs(&g, Topology::synthetic(2, 2), 0);
        let r = serial_bfs(&g, 0);
        assert_eq!(out.stats.visited_vertices, r.visited);
        assert_eq!(out.stats.traversed_edges, r.traversed_edges);
    }
}
