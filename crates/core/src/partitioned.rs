//! Socket-partitioned adjacency storage (§III-B2).
//!
//! "For a multi-socket CPU, we evenly divide the Adj array amongst the
//! available sockets ... we store the Adj array for the first |V_NS|
//! vertices on the first socket, the next |V_NS| vertices on the second
//! socket and so on."
//!
//! `PartitionedCsr` realizes that layout over the [`bfs_platform::arena`]
//! emulation: one neighbor buffer per socket (each homed on its socket and
//! recorded in the arena ledger) plus per-socket offset arrays. The view it
//! exposes is equivalent to [`CsrGraph`] — property-tested — so experiments
//! can measure placement effects (via the arena ledger and the simulated
//! machine's `Boundaries` placement, which mirrors exactly this split)
//! without the traversal code changing.

use bfs_graph::CsrGraph;
use bfs_platform::arena::{NumaArena, SocketBuf};
use bfs_platform::topology::vertices_per_socket;

use crate::VertexId;

/// A CSR adjacency split into per-socket stripes at the `|V_NS|` boundary.
pub struct PartitionedCsr {
    /// Vertices per socket stripe (power of two).
    stripe: usize,
    /// Total vertices.
    num_vertices: usize,
    /// Per-socket local offsets (`local_count + 1` entries each).
    offsets: Vec<SocketBuf<u64>>,
    /// Per-socket neighbor storage.
    neighbors: Vec<SocketBuf<VertexId>>,
}

impl PartitionedCsr {
    /// Splits `graph` across `sockets` socket arenas, recording every
    /// allocation in `arena`.
    pub fn from_graph(graph: &CsrGraph, sockets: usize, arena: &NumaArena) -> Self {
        assert!(sockets > 0);
        assert_eq!(arena.sockets(), sockets, "arena/socket mismatch");
        let n = graph.num_vertices();
        let stripe = vertices_per_socket(n, sockets);
        let mut offsets = Vec::with_capacity(sockets);
        let mut neighbors = Vec::with_capacity(sockets);
        for s in 0..sockets {
            let lo = (s * stripe).min(n);
            let hi = ((s + 1) * stripe).min(n);
            let mut local_offsets: SocketBuf<u64> = arena.alloc_on(s, hi - lo + 1);
            let base = graph.offsets()[lo];
            let len = (graph.offsets()[hi] - base) as usize;
            let mut local_neighbors: SocketBuf<VertexId> = arena.alloc_on(s, len);
            for (i, v) in (lo..=hi).enumerate() {
                local_offsets[i] = graph.offsets()[v] - base;
            }
            local_neighbors
                .copy_from_slice(&graph.raw_neighbors()[base as usize..base as usize + len]);
            offsets.push(local_offsets);
            neighbors.push(local_neighbors);
        }
        Self {
            stripe,
            num_vertices: n,
            offsets,
            neighbors,
        }
    }

    /// Total vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// `|V_NS|`.
    pub fn stripe(&self) -> usize {
        self.stripe
    }

    /// Number of socket stripes.
    pub fn sockets(&self) -> usize {
        self.offsets.len()
    }

    /// `Socket_Id(v) = v >> log2(|V_NS|)`, clamped.
    #[inline]
    pub fn socket_of(&self, v: VertexId) -> usize {
        ((v as usize) / self.stripe).min(self.sockets() - 1)
    }

    /// Neighbor slice of `v`, served from its home socket's buffer.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let s = self.socket_of(v);
        let local = (v as usize) - (s * self.stripe).min(self.num_vertices);
        let off = &self.offsets[s];
        &self.neighbors[s][off[local] as usize..off[local + 1] as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        let s = self.socket_of(v);
        let local = (v as usize) - (s * self.stripe).min(self.num_vertices);
        (self.offsets[s][local + 1] - self.offsets[s][local]) as u32
    }

    /// Neighbor bytes homed on socket `s` — the quantity the experiments
    /// compare against an even split.
    pub fn socket_bytes(&self, s: usize) -> u64 {
        (self.neighbors[s].len() * std::mem::size_of::<VertexId>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfs_graph::gen::rmat::{rmat, RmatConfig};
    use bfs_graph::gen::uniform::uniform_random;
    use bfs_graph::rng::rng_from_seed;

    fn check_equivalence(g: &CsrGraph, sockets: usize) {
        let arena = NumaArena::new(sockets);
        let p = PartitionedCsr::from_graph(g, sockets, &arena);
        assert_eq!(p.num_vertices(), g.num_vertices());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(p.neighbors(v), g.neighbors(v), "vertex {v}");
            assert_eq!(p.degree(v), g.degree(v), "vertex {v}");
        }
        // Every byte is attributed to some socket.
        let total: u64 = (0..sockets).map(|s| p.socket_bytes(s)).sum();
        assert_eq!(total, g.adjacency_bytes());
    }

    #[test]
    fn equivalent_to_flat_csr() {
        let g = uniform_random(1000, 7, &mut rng_from_seed(1));
        for sockets in [1, 2, 3, 4] {
            check_equivalence(&g, sockets);
        }
    }

    #[test]
    fn rmat_with_skewed_lists() {
        let g = rmat(&RmatConfig::paper(11, 8), &mut rng_from_seed(2));
        check_equivalence(&g, 2);
    }

    #[test]
    fn socket_mapping_follows_vns_rule() {
        let g = uniform_random(12, 2, &mut rng_from_seed(3));
        let arena = NumaArena::new(2);
        let p = PartitionedCsr::from_graph(&g, 2, &arena);
        assert_eq!(p.stripe(), 8);
        assert_eq!(p.socket_of(0), 0);
        assert_eq!(p.socket_of(7), 0);
        assert_eq!(p.socket_of(8), 1);
        assert_eq!(p.socket_of(11), 1);
    }

    #[test]
    fn arena_ledger_records_placement() {
        let g = uniform_random(4096, 8, &mut rng_from_seed(4));
        let arena = NumaArena::new(2);
        let p = PartitionedCsr::from_graph(&g, 2, &arena);
        // UR graph: neighbor bytes split evenly (within a few %).
        let (a, b) = (p.socket_bytes(0) as f64, p.socket_bytes(1) as f64);
        assert!(
            (a / b - 1.0).abs() < 0.1,
            "UR split should be even: {a} vs {b}"
        );
        // Arena saw both allocations.
        assert!(arena.bytes_on(0) > 0 && arena.bytes_on(1) > 0);
        assert!(arena.imbalance() < 1.2);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        check_equivalence(&CsrGraph::empty(0), 2);
        check_equivalence(&CsrGraph::empty(5), 4);
        let g = uniform_random(1, 3, &mut rng_from_seed(5));
        check_equivalence(&g, 2);
    }
}
