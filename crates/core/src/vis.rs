//! The `VIS` visited-filter schemes of §III-A / Figure 4.
//!
//! `VIS` exists purely to *filter* expensive `DP` accesses: bit value 1 means
//! "depth definitely assigned" (skip), bit value 0 means "possibly
//! unassigned" (fall through to the `DP` check). The paper's invariant:
//!
//! > "a bit value of 0 in our VIS array implies that the depth of the
//! > corresponding vertex may possibly have been updated, while bit value of
//! > 1 implies that the depth of the corresponding vertex has definitely been
//! > updated."
//!
//! Four schemes are compared in Figure 4, all provided here behind one
//! interface:
//!
//! * [`VisScheme::None`] — no filter; every edge checks `DP` directly.
//! * [`VisScheme::AtomicBit`] — bit array updated with LOCK-prefixed
//!   `fetch_or` (Agarwal et al.; Figure 2(a)).
//! * [`VisScheme::Byte`] — one byte per vertex, plain relaxed load/store.
//!   No races lose updates (each byte has one flag), but 8× the footprint.
//! * [`VisScheme::Bit`] — one *bit* per vertex updated with a plain
//!   load-then-store of the whole byte (Figure 2(b)). Two threads updating
//!   different bits of one byte can lose a bit — the benign race that the
//!   mandatory `DP` re-check absorbs. This is the paper's scheme; with
//!   `N_VIS` partitions it is the *partitioned* series of Figure 4.

use std::sync::atomic::{AtomicU8, Ordering};

use bfs_platform::MaybeHuge;
use serde::{Deserialize, Serialize};

use crate::VertexId;

/// Which VIS representation to use (the Figure 4 series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VisScheme {
    /// No auxiliary structure: check `DP` per edge.
    None,
    /// Atomic (LOCK `fetch_or`) bit array, one RMW per edge — the literal
    /// Figure 2(a) protocol, used for the Figure 4 comparison.
    AtomicBit,
    /// Test-first atomic bit array ("test-and-test-and-set"): a plain read
    /// per edge, a LOCK `fetch_or` only for apparently-unvisited vertices.
    /// This is how tuned atomic-bitmap BFS codes (the Agarwal et al.
    /// baseline of Figure 6) amortize the LOCK cost to once per vertex.
    AtomicBitTest,
    /// Atomic-free byte array.
    Byte,
    /// Atomic-free bit array (the paper's scheme).
    #[default]
    Bit,
}

impl VisScheme {
    /// Storage bytes needed for `n` vertices.
    pub fn storage_bytes(&self, n: usize) -> usize {
        match self {
            VisScheme::None => 0,
            VisScheme::AtomicBit | VisScheme::AtomicBitTest | VisScheme::Bit => n.div_ceil(8),
            VisScheme::Byte => n,
        }
    }

    /// All schemes in the order Figure 4 plots them (plus the tuned
    /// test-first atomic variant used by the Figure 6 baseline).
    pub const ALL: [VisScheme; 5] = [
        VisScheme::None,
        VisScheme::AtomicBit,
        VisScheme::AtomicBitTest,
        VisScheme::Byte,
        VisScheme::Bit,
    ];
}

/// A VIS instance: shared, concurrently updated visited filter.
pub struct Vis {
    scheme: VisScheme,
    bytes: MaybeHuge<AtomicU8>,
    n: usize,
}

impl Vis {
    /// Zeroed filter for `n` vertices under `scheme`, heap-backed.
    pub fn new(scheme: VisScheme, n: usize) -> Self {
        Self::new_backed(scheme, n, false)
    }

    /// [`Vis::new`] with an explicit backing request: when `huge`, the
    /// filter is placed in a 2 MiB-aligned hugepage arena if the host
    /// supports it (silent heap fallback otherwise).
    pub fn new_backed(scheme: VisScheme, n: usize, huge: bool) -> Self {
        Self {
            scheme,
            bytes: MaybeHuge::zeroed(scheme.storage_bytes(n), huge),
            n,
        }
    }

    /// Whether the filter landed in a hugepage arena.
    pub fn is_hugepage_backed(&self) -> bool {
        self.bytes.is_huge()
    }

    /// The scheme in use.
    pub fn scheme(&self) -> VisScheme {
        self.scheme
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a zero-vertex filter.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Zeroes the filter (single-threaded, between runs).
    pub fn reset(&mut self) {
        for b in self.bytes.iter_mut() {
            *b.get_mut() = 0;
        }
    }

    /// O(touched) between-runs reset: zeroes only the storage covering the
    /// given vertices.
    ///
    /// Correctness relies on the marking protocol: every vertex a run marks
    /// is either the source or gets enqueued into some thread's next
    /// frontier (a probe marks `v` only while `v` is being claimed this
    /// step; the claim winner enqueues it). A session that replays the
    /// run's frontiers — source included — through this method therefore
    /// clears every possibly-set bit/byte. Clearing a byte that covers
    /// *untouched* vertices is harmless: their storage was already zero, and
    /// zero ("possibly unassigned") is always the safe VIS state.
    pub fn clear_touched(&mut self, touched: &[VertexId]) {
        match self.scheme {
            VisScheme::None => {}
            VisScheme::Byte => {
                for &v in touched {
                    *self.bytes[v as usize].get_mut() = 0;
                }
            }
            VisScheme::AtomicBit | VisScheme::AtomicBitTest | VisScheme::Bit => {
                for &v in touched {
                    *self.bytes[(v as usize) >> 3].get_mut() = 0;
                }
            }
        }
    }

    /// Filter probe + mark: returns `true` iff the vertex is **definitely
    /// visited** (caller may skip it without touching `DP`). Returns
    /// `false` otherwise, after marking the vertex visited per the scheme —
    /// the caller must then consult `DP` before claiming the vertex.
    #[inline]
    pub fn definitely_visited_or_mark(&self, v: VertexId) -> bool {
        let i = v as usize;
        debug_assert!(i < self.n);
        match self.scheme {
            VisScheme::None => false,
            VisScheme::AtomicBit => {
                let mask = 1u8 << (i & 7);
                // LOCK OR; returns the previous byte, so the previous bit
                // tells us whether some thread already claimed the vertex.
                let prev = self.bytes[i >> 3].fetch_or(mask, Ordering::Relaxed);
                prev & mask != 0
            }
            VisScheme::AtomicBitTest => {
                let mask = 1u8 << (i & 7);
                let b = &self.bytes[i >> 3];
                // Plain read filters visited vertices without a LOCK...
                if b.load(Ordering::Relaxed) & mask != 0 {
                    return true;
                }
                // ...and the claim itself is still exactly-once.
                let prev = b.fetch_or(mask, Ordering::Relaxed);
                prev & mask != 0
            }
            VisScheme::Byte => {
                let b = &self.bytes[i];
                if b.load(Ordering::Relaxed) != 0 {
                    true
                } else {
                    b.store(1, Ordering::Relaxed);
                    false
                }
            }
            VisScheme::Bit => {
                let mask = 1u8 << (i & 7);
                let b = &self.bytes[i >> 3];
                let cur = b.load(Ordering::Relaxed);
                if cur & mask != 0 {
                    true
                } else {
                    // Plain read-modify-write of the byte: concurrent updates
                    // to *other* bits of this byte may be lost (Figure 2(b)).
                    b.store(cur | mask, Ordering::Relaxed);
                    false
                }
            }
        }
    }

    /// Read-only probe (no marking). With `VisScheme::None` this is always
    /// `false`.
    #[inline]
    pub fn is_marked(&self, v: VertexId) -> bool {
        let i = v as usize;
        match self.scheme {
            VisScheme::None => false,
            VisScheme::Byte => self.bytes[i].load(Ordering::Relaxed) != 0,
            VisScheme::AtomicBit | VisScheme::AtomicBitTest | VisScheme::Bit => {
                self.bytes[i >> 3].load(Ordering::Relaxed) & (1 << (i & 7)) != 0
            }
        }
    }

    /// Marks without probing (used to seed the source vertex).
    #[inline]
    pub fn mark(&self, v: VertexId) {
        let _ = self.definitely_visited_or_mark(v);
    }

    /// Storage footprint in bytes.
    pub fn footprint(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_sizes() {
        assert_eq!(VisScheme::None.storage_bytes(1000), 0);
        assert_eq!(VisScheme::Bit.storage_bytes(1000), 125);
        assert_eq!(VisScheme::AtomicBit.storage_bytes(9), 2);
        assert_eq!(VisScheme::Byte.storage_bytes(1000), 1000);
    }

    #[test]
    fn none_scheme_never_filters() {
        let v = Vis::new(VisScheme::None, 8);
        assert!(!v.definitely_visited_or_mark(3));
        assert!(!v.definitely_visited_or_mark(3));
        assert!(!v.is_marked(3));
        assert_eq!(v.footprint(), 0);
    }

    #[test]
    fn marking_schemes_filter_second_probe() {
        for scheme in [
            VisScheme::AtomicBit,
            VisScheme::AtomicBitTest,
            VisScheme::Byte,
            VisScheme::Bit,
        ] {
            let v = Vis::new(scheme, 64);
            assert!(!v.definitely_visited_or_mark(17), "{scheme:?}");
            assert!(v.definitely_visited_or_mark(17), "{scheme:?}");
            assert!(v.is_marked(17), "{scheme:?}");
            assert!(!v.is_marked(18), "{scheme:?}");
        }
    }

    #[test]
    fn bit_scheme_can_lose_a_neighbor_bit_but_byte_cannot() {
        // Deterministic demonstration of the §III-A scenario (2): simulate
        // two "threads" interleaved at the load/store boundary on bits 0 and
        // 1 of one byte. The Bit scheme loses one of the bits; the DP
        // re-check (modeled by the caller) is what restores correctness.
        let v = Vis::new(VisScheme::Bit, 8);
        let b = &v.bytes[0];
        // t1 loads (0), t2 loads (0), t1 stores bit0, t2 stores bit1 — t2's
        // store overwrites t1's.
        let t1 = b.load(Ordering::Relaxed);
        let t2 = b.load(Ordering::Relaxed);
        b.store(t1 | 0b01, Ordering::Relaxed);
        b.store(t2 | 0b10, Ordering::Relaxed);
        assert!(
            !v.is_marked(0),
            "bit 0 was lost — the documented benign race"
        );
        assert!(v.is_marked(1));
    }

    #[test]
    fn atomic_scheme_never_loses_bits_under_concurrency() {
        use std::sync::Arc;
        let v = Arc::new(Vis::new(VisScheme::AtomicBit, 1024));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    // Each thread sets a distinct bit of every byte.
                    for i in 0..128u32 {
                        v.definitely_visited_or_mark(i * 8 + t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..1024u32 {
            assert!(v.is_marked(i), "bit {i} lost under atomic scheme");
        }
    }

    #[test]
    fn exactly_one_thread_wins_first_probe_atomic() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let v = Arc::new(Vis::new(VisScheme::AtomicBit, 8));
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let v = Arc::clone(&v);
                let wins = Arc::clone(&wins);
                std::thread::spawn(move || {
                    if !v.definitely_visited_or_mark(5) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reset_clears_everything() {
        for scheme in [VisScheme::AtomicBit, VisScheme::Byte, VisScheme::Bit] {
            let mut v = Vis::new(scheme, 32);
            v.mark(9);
            v.reset();
            assert!(!v.is_marked(9));
        }
    }

    #[test]
    fn clear_touched_clears_exactly_the_covering_storage() {
        for scheme in VisScheme::ALL {
            let mut v = Vis::new(scheme, 64);
            v.mark(9);
            v.mark(17);
            v.mark(40);
            v.clear_touched(&[9, 40]);
            assert!(!v.is_marked(9), "{scheme:?}");
            assert!(!v.is_marked(40), "{scheme:?}");
            // Vertex 17 shares no byte with 9 or 40 and must survive (except
            // under None, which never stores anything).
            if scheme != VisScheme::None {
                assert!(v.is_marked(17), "{scheme:?}");
            }
            v.clear_touched(&[17]);
            assert!(!v.is_marked(17), "{scheme:?}");
        }
    }

    #[test]
    fn zero_vertex_filter() {
        let v = Vis::new(VisScheme::Bit, 0);
        assert!(v.is_empty());
        assert_eq!(v.footprint(), 0);
    }
}
