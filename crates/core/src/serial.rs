//! Serial reference BFS — the baseline of Figure 1 and the correctness
//! oracle for every parallel variant.

use bfs_graph::CsrGraph;

use crate::dp::INF_DEPTH;
use crate::VertexId;

/// Output of a serial traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SerialBfs {
    /// Depth per vertex (`INF_DEPTH` = unreached).
    pub depths: Vec<u32>,
    /// Parent per vertex (`VertexId::MAX` = unreached; the source is its own
    /// parent).
    pub parents: Vec<VertexId>,
    /// Number of BFS levels below the source.
    pub max_depth: u32,
    /// Vertices assigned a depth (|V′|).
    pub visited: u64,
    /// Traversed edges (|E′|): sum of degrees of visited vertices.
    pub traversed_edges: u64,
}

/// Textbook synchronous BFS (Figure 1): iterate boundary sets, update depth
/// and parent of unvisited neighbors.
pub fn serial_bfs(graph: &CsrGraph, source: VertexId) -> SerialBfs {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut depths = vec![INF_DEPTH; n];
    let mut parents = vec![VertexId::MAX; n];
    depths[source as usize] = 0;
    parents[source as usize] = source;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut depth = 0u32;
    let mut visited = 1u64;
    let mut traversed = graph.degree(source) as u64;
    let mut max_depth = 0;
    while !frontier.is_empty() {
        next.clear();
        for &u in &frontier {
            for &v in graph.neighbors(u) {
                if depths[v as usize] == INF_DEPTH {
                    depths[v as usize] = depth + 1;
                    parents[v as usize] = u;
                    next.push(v);
                    visited += 1;
                    traversed += graph.degree(v) as u64;
                    max_depth = depth + 1;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        depth += 1;
    }
    SerialBfs {
        depths,
        parents,
        max_depth,
        visited,
        traversed_edges: traversed,
    }
}

/// Serial *bottom-up* BFS: each level scans every unvisited vertex and
/// probes its neighbor list for a parent at the current depth, claiming on
/// the first hit — the reference semantics of the parallel bottom-up kernel
/// (and, like it, correct only under the repo's symmetric doubled-edge
/// convention where out-neighbors equal in-neighbors).
///
/// Depths, visit counts, and traversed edges are identical to
/// [`serial_bfs`]; parents may differ (bottom-up picks the first frontier
/// parent in neighbor-list order) but always satisfy the BFS-tree property
/// `depth(parent(v)) == depth(v) - 1`.
pub fn serial_bfs_bottom_up(graph: &CsrGraph, source: VertexId) -> SerialBfs {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut depths = vec![INF_DEPTH; n];
    let mut parents = vec![VertexId::MAX; n];
    depths[source as usize] = 0;
    parents[source as usize] = source;
    let mut visited = 1u64;
    let mut traversed = graph.degree(source) as u64;
    let mut max_depth = 0;
    let mut depth = 0u32;
    loop {
        let mut claimed_any = false;
        for v in 0..n as u32 {
            if depths[v as usize] != INF_DEPTH {
                continue;
            }
            if let Some(&p) = graph
                .neighbors(v)
                .iter()
                .find(|&&p| depths[p as usize] == depth)
            {
                depths[v as usize] = depth + 1;
                parents[v as usize] = p;
                visited += 1;
                traversed += graph.degree(v) as u64;
                max_depth = depth + 1;
                claimed_any = true;
            }
        }
        if !claimed_any {
            break;
        }
        depth += 1;
    }
    SerialBfs {
        depths,
        parents,
        max_depth,
        visited,
        traversed_edges: traversed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfs_graph::gen::classic::{binary_tree, path, star, two_cliques};
    use bfs_graph::gen::rmat::{rmat, RmatConfig};
    use bfs_graph::rng::rng_from_seed;
    use bfs_graph::stats::traversal_shape;

    #[test]
    fn path_depths_and_parents() {
        let g = path(5);
        let r = serial_bfs(&g, 0);
        assert_eq!(r.depths, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.parents, vec![0, 0, 1, 2, 3]);
        assert_eq!(r.max_depth, 4);
        assert_eq!(r.visited, 5);
    }

    #[test]
    fn star_from_leaf() {
        let g = star(4);
        let r = serial_bfs(&g, 3);
        assert_eq!(r.depths, vec![1, 2, 2, 0]);
        assert_eq!(r.parents[0], 3);
        assert_eq!(r.max_depth, 2);
    }

    #[test]
    fn binary_tree_counts() {
        let g = binary_tree(15);
        let r = serial_bfs(&g, 0);
        assert_eq!(r.max_depth, 3);
        assert_eq!(r.traversed_edges, g.num_edges());
    }

    #[test]
    fn disconnected_vertices_stay_inf() {
        let g = two_cliques(3, 2);
        let r = serial_bfs(&g, 0);
        assert_eq!(r.visited, 3);
        assert_eq!(r.depths[3], INF_DEPTH);
        assert_eq!(r.parents[4], VertexId::MAX);
    }

    #[test]
    fn agrees_with_graph_stats_oracle() {
        let g = rmat(&RmatConfig::paper(10, 8), &mut rng_from_seed(3));
        let src = bfs_graph::stats::nth_non_isolated(&g, 0).unwrap();
        let r = serial_bfs(&g, src);
        let s = traversal_shape(&g, src);
        assert_eq!(r.visited, s.visited_vertices);
        assert_eq!(r.traversed_edges, s.traversed_edges);
        assert_eq!(r.max_depth, s.depth);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn rejects_bad_source() {
        serial_bfs(&path(3), 9);
    }

    #[test]
    fn bottom_up_oracle_matches_top_down_oracle() {
        use bfs_graph::gen::uniform::uniform_random;
        let graphs = [
            path(9),
            star(7),
            binary_tree(31),
            two_cliques(5, 4),
            uniform_random(400, 5, &mut rng_from_seed(12)),
            rmat(&RmatConfig::paper(9, 8), &mut rng_from_seed(5)),
        ];
        for g in &graphs {
            for src in [0u32, (g.num_vertices() as u32 - 1) / 2] {
                let td = serial_bfs(g, src);
                let bu = serial_bfs_bottom_up(g, src);
                assert_eq!(bu.depths, td.depths);
                assert_eq!(bu.visited, td.visited);
                assert_eq!(bu.traversed_edges, td.traversed_edges);
                assert_eq!(bu.max_depth, td.max_depth);
                crate::validate::validate_bfs_tree(g, src, &bu.depths, &bu.parents).unwrap();
            }
        }
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bottom_up_rejects_bad_source() {
        serial_bfs_bottom_up(&path(3), 9);
    }
}
