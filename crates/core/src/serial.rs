//! Serial reference BFS — the baseline of Figure 1 and the correctness
//! oracle for every parallel variant.

use bfs_graph::CsrGraph;

use crate::dp::INF_DEPTH;
use crate::VertexId;

/// Output of a serial traversal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SerialBfs {
    /// Depth per vertex (`INF_DEPTH` = unreached).
    pub depths: Vec<u32>,
    /// Parent per vertex (`VertexId::MAX` = unreached; the source is its own
    /// parent).
    pub parents: Vec<VertexId>,
    /// Number of BFS levels below the source.
    pub max_depth: u32,
    /// Vertices assigned a depth (|V′|).
    pub visited: u64,
    /// Traversed edges (|E′|): sum of degrees of visited vertices.
    pub traversed_edges: u64,
}

/// Textbook synchronous BFS (Figure 1): iterate boundary sets, update depth
/// and parent of unvisited neighbors.
pub fn serial_bfs(graph: &CsrGraph, source: VertexId) -> SerialBfs {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut depths = vec![INF_DEPTH; n];
    let mut parents = vec![VertexId::MAX; n];
    depths[source as usize] = 0;
    parents[source as usize] = source;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut depth = 0u32;
    let mut visited = 1u64;
    let mut traversed = graph.degree(source) as u64;
    let mut max_depth = 0;
    while !frontier.is_empty() {
        next.clear();
        for &u in &frontier {
            for &v in graph.neighbors(u) {
                if depths[v as usize] == INF_DEPTH {
                    depths[v as usize] = depth + 1;
                    parents[v as usize] = u;
                    next.push(v);
                    visited += 1;
                    traversed += graph.degree(v) as u64;
                    max_depth = depth + 1;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        depth += 1;
    }
    SerialBfs {
        depths,
        parents,
        max_depth,
        visited,
        traversed_edges: traversed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfs_graph::gen::classic::{binary_tree, path, star, two_cliques};
    use bfs_graph::gen::rmat::{rmat, RmatConfig};
    use bfs_graph::rng::rng_from_seed;
    use bfs_graph::stats::traversal_shape;

    #[test]
    fn path_depths_and_parents() {
        let g = path(5);
        let r = serial_bfs(&g, 0);
        assert_eq!(r.depths, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.parents, vec![0, 0, 1, 2, 3]);
        assert_eq!(r.max_depth, 4);
        assert_eq!(r.visited, 5);
    }

    #[test]
    fn star_from_leaf() {
        let g = star(4);
        let r = serial_bfs(&g, 3);
        assert_eq!(r.depths, vec![1, 2, 2, 0]);
        assert_eq!(r.parents[0], 3);
        assert_eq!(r.max_depth, 2);
    }

    #[test]
    fn binary_tree_counts() {
        let g = binary_tree(15);
        let r = serial_bfs(&g, 0);
        assert_eq!(r.max_depth, 3);
        assert_eq!(r.traversed_edges, g.num_edges());
    }

    #[test]
    fn disconnected_vertices_stay_inf() {
        let g = two_cliques(3, 2);
        let r = serial_bfs(&g, 0);
        assert_eq!(r.visited, 3);
        assert_eq!(r.depths[3], INF_DEPTH);
        assert_eq!(r.parents[4], VertexId::MAX);
    }

    #[test]
    fn agrees_with_graph_stats_oracle() {
        let g = rmat(&RmatConfig::paper(10, 8), &mut rng_from_seed(3));
        let src = bfs_graph::stats::nth_non_isolated(&g, 0).unwrap();
        let r = serial_bfs(&g, src);
        let s = traversal_shape(&g, src);
        assert_eq!(r.visited, s.visited_vertices);
        assert_eq!(r.traversed_edges, s.traversed_edges);
        assert_eq!(r.max_depth, s.depth);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn rejects_bad_source() {
        serial_bfs(&path(3), 9);
    }
}
