//! Frontier buffers and the TLB-aware rearrangement (§III-B3(b), §III-C(7)).
//!
//! Spatially incoherent frontier order makes every `Adj` access a potential
//! TLB miss once the adjacency array outgrows the TLB's reach. Rather than
//! multi-pass processing (which would re-read `BV_t^N` several times), the
//! paper performs a **one-pass histogram reorder** of each thread's next
//! frontier at the end of every step, following the partitioning scheme of
//! Kim et al. \[20\]: histogram → scatter into a temporary array → copy back.
//! The number of histogram bins is the total pages of `Adj` divided by the
//! pages the TLB can hold, so consecutive frontier entries land within one
//! TLB window of adjacency pages.

use bfs_graph::CsrGraph;

use crate::VertexId;

/// Result of a rearrangement pass (for stats and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RearrangeInfo {
    /// Histogram bins used.
    pub bins: usize,
    /// Entries reordered.
    pub entries: usize,
}

/// Computes the histogram key of a vertex: which TLB-window of `Adj` pages
/// its adjacency list starts in.
#[inline]
pub fn page_window_key(
    graph: &CsrGraph,
    v: VertexId,
    page_bytes: u64,
    pages_per_window: u64,
) -> usize {
    (graph.adjacency_byte_offset(v) / page_bytes / pages_per_window) as usize
}

/// Number of histogram bins for a graph: `ceil(total Adj pages /
/// tlb_entries)`, at least 1.
pub fn histogram_bins(graph: &CsrGraph, page_bytes: u64, tlb_entries: u64) -> usize {
    let pages = graph.adjacency_bytes().div_ceil(page_bytes).max(1);
    pages.div_ceil(tlb_entries.max(1)).max(1) as usize
}

/// Stable one-pass counting-sort of `frontier` by adjacency page window.
/// `scratch` is the reusable temporary array (the paper's extra 8 bytes per
/// vertex of rearrangement traffic); it is resized as needed.
pub fn rearrange_frontier(
    frontier: &mut [VertexId],
    graph: &CsrGraph,
    page_bytes: u64,
    tlb_entries: u64,
    scratch: &mut Vec<VertexId>,
) -> RearrangeInfo {
    let bins = histogram_bins(graph, page_bytes, tlb_entries);
    let info = RearrangeInfo {
        bins,
        entries: frontier.len(),
    };
    if bins <= 1 || frontier.len() <= 1 {
        return info; // already within one TLB window
    }
    let pages = graph.adjacency_bytes().div_ceil(page_bytes).max(1);
    let pages_per_window = pages.div_ceil(bins as u64).max(1);

    // Pass 1: histogram.
    let mut hist = vec![0usize; bins + 1];
    for &v in frontier.iter() {
        hist[page_window_key(graph, v, page_bytes, pages_per_window) + 1] += 1;
    }
    for i in 0..bins {
        hist[i + 1] += hist[i];
    }
    // Pass 2: stable scatter into scratch.
    scratch.clear();
    scratch.resize(frontier.len(), 0);
    let mut cursor = hist;
    for &v in frontier.iter() {
        let k = page_window_key(graph, v, page_bytes, pages_per_window);
        scratch[cursor[k]] = v;
        cursor[k] += 1;
    }
    // Pass 3: copy back.
    frontier.copy_from_slice(scratch);
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfs_graph::gen::uniform::uniform_random_directed;
    use bfs_graph::rng::rng_from_seed;

    fn keys(g: &CsrGraph, f: &[u32], page: u64, tlb: u64) -> Vec<usize> {
        let pages = g.adjacency_bytes().div_ceil(page).max(1);
        let bins = histogram_bins(g, page, tlb) as u64;
        let ppw = pages.div_ceil(bins).max(1);
        f.iter()
            .map(|&v| page_window_key(g, v, page, ppw))
            .collect()
    }

    #[test]
    fn rearrangement_sorts_by_page_window_and_permutes() {
        let g = uniform_random_directed(4096, 8, &mut rng_from_seed(1));
        // 4096 * 8 * 4 B = 128 KB of Adj = 32 pages; 4-entry TLB → 8 bins.
        let mut f: Vec<u32> = (0..4096u32).rev().collect();
        let mut sorted_copy = f.clone();
        sorted_copy.sort_unstable();
        let mut scratch = Vec::new();
        let info = rearrange_frontier(&mut f, &g, 4096, 4, &mut scratch);
        assert_eq!(info.entries, 4096);
        assert!(info.bins >= 8);
        let ks = keys(&g, &f, 4096, 4);
        assert!(ks.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        let mut perm_check = f.clone();
        perm_check.sort_unstable();
        assert_eq!(perm_check, sorted_copy, "must be a permutation");
    }

    #[test]
    fn rearrangement_is_stable_within_a_window() {
        let g = uniform_random_directed(1024, 4, &mut rng_from_seed(2));
        let mut f: Vec<u32> = vec![800, 3, 801, 5, 802, 4];
        let mut scratch = Vec::new();
        rearrange_frontier(&mut f, &g, 4096, 1, &mut scratch);
        // Entries with equal keys keep input order: 3 appears before 5,
        // 5 before 4 iff they share a window.
        let ks = keys(&g, &f, 4096, 1);
        for w in ks.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // stability: find positions of 3 and 5 (same low window for a small
        // contiguous-degree graph) — 3 must precede 5 which must precede 4
        // whenever keys are equal.
        let pos = |x: u32| f.iter().position(|&v| v == x).unwrap();
        let same_key = |a: u32, b: u32| {
            let ka = keys(&g, &[a], 4096, 1)[0];
            let kb = keys(&g, &[b], 4096, 1)[0];
            ka == kb
        };
        if same_key(3, 5) {
            assert!(pos(3) < pos(5));
        }
        if same_key(5, 4) {
            assert!(pos(5) < pos(4));
        }
    }

    #[test]
    fn small_adj_needs_one_bin_and_skips_work() {
        let g = uniform_random_directed(64, 2, &mut rng_from_seed(3));
        assert_eq!(histogram_bins(&g, 4096, 512), 1);
        let mut f = vec![5u32, 1, 9];
        let orig = f.clone();
        let mut scratch = Vec::new();
        let info = rearrange_frontier(&mut f, &g, 4096, 512, &mut scratch);
        assert_eq!(info.bins, 1);
        assert_eq!(f, orig, "single window: order untouched");
    }

    #[test]
    fn empty_and_singleton_frontiers() {
        let g = uniform_random_directed(64, 2, &mut rng_from_seed(4));
        let mut scratch = Vec::new();
        let mut empty: Vec<u32> = vec![];
        rearrange_frontier(&mut empty, &g, 4096, 1, &mut scratch);
        let mut one = vec![7u32];
        rearrange_frontier(&mut one, &g, 4096, 1, &mut scratch);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let g = uniform_random_directed(256, 8, &mut rng_from_seed(5));
        let mut scratch = Vec::new();
        let mut f: Vec<u32> = (0..256).rev().collect();
        rearrange_frontier(&mut f, &g, 512, 1, &mut scratch);
        let cap = scratch.capacity();
        let mut f2: Vec<u32> = (0..200).rev().collect();
        rearrange_frontier(&mut f2, &g, 512, 1, &mut scratch);
        assert_eq!(scratch.capacity(), cap, "no reallocation for smaller runs");
    }
}
