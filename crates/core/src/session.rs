//! Persistent query sessions: batched multi-source BFS over one engine.
//!
//! [`BfsEngine::run`] pays a per-query setup cost that has nothing to do
//! with the traversal itself: it allocates and zeroes an O(|V|) `DP` array
//! and `VIS` filter, grows fresh per-thread frontier and bin buffers, and
//! (before the pool became persistent) spawned and pinned a thread per lane.
//! For the Graph500-style workload of many traversals over one graph, that
//! setup dominates small queries.
//!
//! A [`BfsSession`] keeps all of it alive across queries:
//!
//! * the engine's [`SocketPool`](bfs_platform::SocketPool) parks its pinned
//!   workers between runs, so a query costs a wake plus barriers instead of
//!   thread spawns;
//! * `DP` resets in O(1) per query via an epoch stamp in each packed word
//!   (see [`crate::dp`] — the single-aligned-store §III-A argument is
//!   preserved because the stamp travels inside the same 64-bit word);
//! * `VIS` resets in O(touched) by replaying the previous run's enqueue log
//!   (see [`crate::vis::Vis::clear_touched`]);
//! * frontier, bin, and scratch buffers keep their high-water capacity, so
//!   a warm query allocates nothing for traversal storage.
//!
//! Capacity policy: buffers only ever grow, to the largest traversal the
//! session has served. Call [`BfsSession::shrink`] to release that memory
//! (the next query regrows it); [`BfsSession::buffer_capacity_words`]
//! reports the current retained footprint.
//!
//! # Example
//!
//! ```
//! use bfs_core::{BfsOptions, BfsSession};
//! use bfs_graph::gen::uniform::uniform_random;
//! use bfs_graph::rng::rng_from_seed;
//! use bfs_platform::Topology;
//!
//! let graph = uniform_random(1000, 6, &mut rng_from_seed(1));
//! let mut session = BfsSession::new(&graph, Topology::synthetic(2, 2), BfsOptions::default());
//! let outputs = session.run_batch(&[0, 17, 42]);
//! assert_eq!(outputs.len(), 3);
//! assert_eq!(outputs[1].depths[17], 0);
//! assert_eq!(session.runs(), 3);
//! ```

use bfs_graph::{CsrGraph, VertexPermutation};
use bfs_platform::Topology;
use bfs_trace::{NoopSink, TraceSink};

use crate::dp::INF_DEPTH;
use crate::engine::{BfsEngine, BfsOptions, BfsOutput, RunState};
use crate::VertexId;

/// A reusable query session: one [`BfsEngine`] plus the long-lived
/// traversal state that makes warm queries allocation-free.
///
/// Queries take `&mut self` — the session serializes its own queries by
/// construction, which is what lets the reset protocol skip all
/// synchronization.
///
/// # Relabeled graphs
///
/// When the graph carries a [`VertexPermutation`] (it was rewritten by
/// [`bfs_graph::degree_order`]), the session is the translation boundary:
/// sources are mapped external → internal before the traversal and the
/// returned `depths`/`parents` arrays are permuted back to external id
/// order afterwards, with parents translated through the inverse map.
/// Callers — the query layer, the serve endpoints, tests — never see
/// internal ids. The translation buffers live on the session, so warm
/// queries stay allocation-free; translation time is outside
/// `stats.total_time` (it is answer formatting, not traversal).
pub struct BfsSession<'g> {
    engine: BfsEngine<'g>,
    state: RunState,
    /// Scratch pair for the external-order permute of `depths`/`parents`;
    /// swapped with the output's vectors each query, so both sides keep
    /// their high-water capacity.
    translate: (Vec<u32>, Vec<VertexId>),
}

impl<'g> BfsSession<'g> {
    /// Builds an engine and wraps it in a session.
    pub fn new(graph: &'g CsrGraph, topology: Topology, options: BfsOptions) -> Self {
        Self::from_engine(BfsEngine::new(graph, topology, options))
    }

    /// Wraps an existing engine.
    pub fn from_engine(engine: BfsEngine<'g>) -> Self {
        let state = RunState::new(&engine, true);
        Self {
            engine,
            state,
            translate: (Vec::new(), Vec::new()),
        }
    }

    /// [`BfsSession::new`] with an explicit `DP` epoch-stamp width.
    ///
    /// A narrow width forces frequent stamp wraparound (and thus the full
    /// `DP` re-zero fallback); tests use it to exercise that path in a few
    /// queries instead of thousands.
    pub fn with_epoch_bits(
        graph: &'g CsrGraph,
        topology: Topology,
        options: BfsOptions,
        epoch_bits: u32,
    ) -> Self {
        let engine = BfsEngine::new(graph, topology, options);
        let state = RunState::with_epoch_bits(&engine, true, Some(epoch_bits));
        Self {
            engine,
            state,
            translate: (Vec::new(), Vec::new()),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &BfsEngine<'g> {
        &self.engine
    }

    /// Number of queries this session has served.
    pub fn runs(&self) -> u64 {
        self.state.runs()
    }

    /// Merged view of the engine's always-on metrics registry (totals
    /// accumulated across every query this session served since the last
    /// [`reset_metrics`](Self::reset_metrics)).
    pub fn metrics_snapshot(&mut self) -> bfs_metrics::MetricsSnapshot {
        self.engine.metrics_snapshot()
    }

    /// Zeroes the engine's metrics registry.
    pub fn reset_metrics(&mut self) {
        self.engine.reset_metrics();
    }

    /// Mutable access to the engine's metrics registry (see
    /// [`BfsEngine::metrics_mut`]).
    pub fn metrics_mut(&mut self) -> &mut bfs_metrics::MetricsRegistry {
        self.engine.metrics_mut()
    }

    /// Retained frontier/bin/scratch capacity in `u32` words — the
    /// high-water traversal footprint (excludes the fixed O(|V|) `DP`/`VIS`
    /// arrays).
    pub fn buffer_capacity_words(&self) -> usize {
        self.state.buffer_capacity_words()
    }

    /// Releases all retained frontier/bin/scratch capacity. The next query
    /// regrows the buffers; `DP`/`VIS` are fixed-size and unaffected.
    pub fn shrink(&mut self) {
        self.state.shrink();
    }

    /// Runs one query from `source`.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn run(&mut self, source: VertexId) -> BfsOutput {
        let mut out = BfsOutput::default();
        self.run_reusing(source, &mut out);
        out
    }

    /// Runs one query from `source`, writing into `out` so its `depths`,
    /// `parents`, and `frontier_sizes` allocations are reused. With a warmed
    /// session and a reused `out`, the query allocates nothing for
    /// traversal storage.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn run_reusing(&mut self, source: VertexId, out: &mut BfsOutput) {
        self.run_traced_reusing(source, &NoopSink, out);
    }

    /// [`run`](Self::run) with tracing: emits one `RunEvent` (engine name
    /// `"session"`) and one `StepEvent` per BFS level into `sink`.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn run_traced(&mut self, source: VertexId, sink: &dyn TraceSink) -> BfsOutput {
        let mut out = BfsOutput::default();
        self.run_traced_reusing(source, sink, &mut out);
        out
    }

    /// [`run_reusing`](Self::run_reusing) with tracing.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn run_traced_reusing(
        &mut self,
        source: VertexId,
        sink: &dyn TraceSink,
        out: &mut BfsOutput,
    ) {
        match self.engine.graph().permutation() {
            None => {
                self.engine
                    .run_with_state(&mut self.state, source, sink, "session", out);
            }
            Some(perm) => {
                // Source ids arrive in external space; reject before the
                // forward map would turn the mistake into an index panic.
                assert!((source as usize) < perm.len(), "source out of range");
                let internal = perm.to_internal(source);
                self.engine
                    .run_with_state(&mut self.state, internal, sink, "session", out);
                translate_output(perm, out, &mut self.translate);
            }
        }
    }

    /// Read access to the last run's per-level digest: direction,
    /// frontier size, and critical-path phase nanoseconds per BFS level,
    /// recorded allocation-free into a fixed-capacity log (the flight-
    /// recorder seam, DESIGN.md §15). Level sizes and directions are id-
    /// space-agnostic, so the digest needs no permutation translation on
    /// relabeled graphs. Empty before the first run; overwritten by each
    /// run, so a batch leaves the digest of its last source's traversal.
    pub fn with_level_digest<R>(&self, f: impl FnOnce(&bfs_trace::LevelDigestLog) -> R) -> R {
        self.state.with_level_digest(f)
    }

    /// Runs one query per source, in order, returning one output per source.
    ///
    /// # Panics
    /// Panics if any source is out of range.
    pub fn run_batch(&mut self, sources: &[VertexId]) -> Vec<BfsOutput> {
        self.run_batch_traced(sources, &NoopSink)
    }

    /// [`run_batch`](Self::run_batch) with tracing (one `RunEvent` per
    /// query).
    ///
    /// # Panics
    /// Panics if any source is out of range.
    pub fn run_batch_traced(
        &mut self,
        sources: &[VertexId],
        sink: &dyn TraceSink,
    ) -> Vec<BfsOutput> {
        sources.iter().map(|&s| self.run_traced(s, sink)).collect()
    }
}

/// Permutes a finished traversal's `depths`/`parents` from internal layout
/// order back to external id order, translating parent ids through the
/// inverse map. Unreached sentinels (`INF_DEPTH` / `VertexId::MAX`) pass
/// through unchanged. `scratch` supplies the destination buffers and is
/// swapped with the output's, so neither side reallocates once warm.
fn translate_output(
    perm: &VertexPermutation,
    out: &mut BfsOutput,
    scratch: &mut (Vec<u32>, Vec<VertexId>),
) {
    let (depths, parents) = scratch;
    depths.clear();
    parents.clear();
    depths.reserve(out.depths.len());
    parents.reserve(out.parents.len());
    for &internal in perm.forward() {
        let depth = out.depths[internal as usize];
        depths.push(depth);
        parents.push(if depth == INF_DEPTH {
            VertexId::MAX
        } else {
            perm.to_external(out.parents[internal as usize])
        });
    }
    std::mem::swap(&mut out.depths, depths);
    std::mem::swap(&mut out.parents, parents);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use crate::validate::validate_bfs_tree;
    use bfs_graph::gen::classic::{path, star, two_cliques};
    use bfs_graph::gen::uniform::uniform_random;
    use bfs_graph::rng::rng_from_seed;

    #[test]
    fn session_matches_engine_across_back_to_back_sources() {
        let g = uniform_random(1500, 6, &mut rng_from_seed(31));
        let topo = Topology::synthetic(2, 2);
        let engine = BfsEngine::new(&g, topo, BfsOptions::default());
        let mut session = BfsSession::new(&g, topo, BfsOptions::default());
        for source in [0, 700, 3, 1499, 0] {
            let cold = engine.run(source);
            let warm = session.run(source);
            // Parents and duplicate counts are racy (the §III-A benign
            // race); depths and the tree shape are the invariants.
            assert_eq!(warm.depths, cold.depths, "source {source}");
            validate_bfs_tree(&g, source, &warm.depths, &warm.parents).unwrap();
            assert_eq!(
                warm.stats.visited_vertices, cold.stats.visited_vertices,
                "source {source}"
            );
            assert_eq!(
                warm.stats.traversed_edges, cold.stats.traversed_edges,
                "source {source}"
            );
            assert_eq!(warm.stats.steps, cold.stats.steps, "source {source}");
        }
        assert_eq!(session.runs(), 5);
    }

    #[test]
    fn reused_output_buffers_give_identical_results() {
        let g = uniform_random(800, 5, &mut rng_from_seed(8));
        let mut session = BfsSession::new(&g, Topology::synthetic(2, 2), BfsOptions::default());
        let mut out = BfsOutput::default();
        for source in [0, 50, 799] {
            session.run_reusing(source, &mut out);
            let reference = serial_bfs(&g, source);
            assert_eq!(out.depths, reference.depths, "source {source}");
            validate_bfs_tree(&g, source, &out.depths, &out.parents).unwrap();
        }
    }

    #[test]
    fn tiny_epoch_width_wraps_and_stays_correct() {
        // 2 stamp bits → epochs {1, 2, 3}: the 3rd reset wraps and forces
        // the full re-zero path. Run enough queries to wrap twice.
        let g = uniform_random(600, 4, &mut rng_from_seed(77));
        let mut session =
            BfsSession::with_epoch_bits(&g, Topology::synthetic(2, 2), BfsOptions::default(), 2);
        for q in 0..8 {
            let source = (q * 83 % 600) as VertexId;
            let out = session.run(source);
            let reference = serial_bfs(&g, source);
            assert_eq!(out.depths, reference.depths, "query {q} source {source}");
        }
    }

    #[test]
    fn disconnected_components_reset_cleanly() {
        // A run that visits one clique must not leak marks into a later run
        // from the other clique.
        let g = two_cliques(10, 10);
        let mut session = BfsSession::new(&g, Topology::synthetic(2, 2), BfsOptions::default());
        let a = session.run(0);
        let b = session.run(10);
        assert_eq!(a.stats.visited_vertices, 10);
        assert_eq!(b.stats.visited_vertices, 10);
        assert_eq!(b.depths[0], crate::INF_DEPTH);
        assert_eq!(a.depths[10], crate::INF_DEPTH);
    }

    #[test]
    fn adaptive_direction_switches_across_warm_queries() {
        // Dense enough that the default α/β go bottom-up in the middle
        // levels; every warm query re-decides per level over recycled
        // VIS/DP/bitmap state.
        let g = uniform_random(2500, 12, &mut rng_from_seed(19));
        let opts = BfsOptions {
            direction: crate::DirectionPolicy::auto(),
            ..Default::default()
        };
        let mut session = BfsSession::new(&g, Topology::synthetic(2, 2), opts);
        let mut out = BfsOutput::default();
        for &source in &[0u32, 1250, 2499, 7, 0] {
            session.run_reusing(source, &mut out);
            let reference = serial_bfs(&g, source);
            assert_eq!(out.depths, reference.depths, "source {source}");
            validate_bfs_tree(&g, source, &out.depths, &out.parents).unwrap();
            assert_eq!(
                out.stats.step_directions.len(),
                out.stats.steps as usize,
                "source {source}"
            );
            assert!(
                out.stats.bottom_up_steps() > 0,
                "source {source}: expected a bottom-up middle level, got {:?}",
                out.stats.step_directions
            );
        }
    }

    #[test]
    fn tiny_epoch_width_wraps_under_bottom_up() {
        // The bottom-up kernel's unvisited scan reads DP/VIS stamps, so it
        // must honor epoch resets exactly like top-down. 2 stamp bits →
        // wrap twice over 8 queries, alternating forced directions.
        let g = uniform_random(600, 4, &mut rng_from_seed(77));
        for direction in [
            crate::DirectionPolicy::ForcedBottomUp,
            crate::DirectionPolicy::auto(),
        ] {
            let opts = BfsOptions {
                direction,
                ..Default::default()
            };
            let mut session = BfsSession::with_epoch_bits(&g, Topology::synthetic(2, 2), opts, 2);
            for q in 0..8 {
                let source = (q * 83 % 600) as VertexId;
                let out = session.run(source);
                let reference = serial_bfs(&g, source);
                assert_eq!(
                    out.depths, reference.depths,
                    "query {q} source {source} ({direction:?})"
                );
            }
        }
    }

    #[test]
    fn disconnected_components_reset_cleanly_bottom_up() {
        // Under forced bottom-up the kernel scans *all* vertices each level,
        // including the unreachable clique — stale stamps there must not
        // produce claims in a later query.
        let g = two_cliques(10, 10);
        let opts = BfsOptions {
            direction: crate::DirectionPolicy::ForcedBottomUp,
            ..Default::default()
        };
        let mut session = BfsSession::new(&g, Topology::synthetic(2, 2), opts);
        let a = session.run(0);
        let b = session.run(10);
        let c = session.run(0);
        assert_eq!(a.stats.visited_vertices, 10);
        assert_eq!(b.stats.visited_vertices, 10);
        assert_eq!(a.depths, c.depths);
        assert_eq!(b.depths[0], crate::INF_DEPTH);
        assert_eq!(a.depths[10], crate::INF_DEPTH);
    }

    #[test]
    fn batch_returns_one_output_per_source() {
        let g = star(9);
        let mut session = BfsSession::new(&g, Topology::synthetic(1, 2), BfsOptions::default());
        let outs = session.run_batch(&[0, 1, 5]);
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].depths[5], 1);
        assert_eq!(outs[1].depths[0], 1);
        assert_eq!(outs[2].depths[5], 0);
        assert_eq!(session.runs(), 3);
    }

    #[test]
    fn capacity_is_retained_then_released_by_shrink() {
        let g = uniform_random(2000, 8, &mut rng_from_seed(4));
        // Single thread: no racy duplicate enqueues, so repeat queries are
        // bit-identical and the high-water capacity is exactly stable.
        let mut session = BfsSession::new(&g, Topology::synthetic(1, 1), BfsOptions::default());
        assert_eq!(session.buffer_capacity_words(), 0);
        // Two warm-up queries: the frontier buffers swap roles every step,
        // so with an odd step count the pair converges to its joint
        // high-water only on the second run.
        session.run(0);
        session.run(0);
        let high_water = session.buffer_capacity_words();
        assert!(high_water > 0);
        session.run(0);
        // Same query → no growth beyond the high-water mark.
        assert_eq!(session.buffer_capacity_words(), high_water);
        session.shrink();
        assert_eq!(session.buffer_capacity_words(), 0);
        // Buffers regrow and the query still works.
        let out = session.run(0);
        assert!(out.stats.visited_vertices > 0);
        assert!(session.buffer_capacity_words() > 0);
    }

    #[test]
    fn session_tracing_names_the_session_engine() {
        use bfs_trace::{RingSink, TraceEvent};
        let g = path(17);
        let mut session = BfsSession::new(&g, Topology::synthetic(1, 2), BfsOptions::default());
        let ring = RingSink::new(256);
        session.run_batch_traced(&[0, 16], &ring);
        let runs: Vec<_> = ring
            .snapshot()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Run(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.engine == "session"));
        assert_eq!(runs[0].source, 0);
        assert_eq!(runs[1].source, 16);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn rejects_bad_source() {
        let g = path(3);
        BfsSession::new(&g, Topology::synthetic(1, 1), BfsOptions::default()).run(9);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn rejects_bad_source_on_relabeled_graph() {
        let g = uniform_random(100, 4, &mut rng_from_seed(2));
        let (rg, _) = bfs_graph::degree_order(&g);
        BfsSession::new(&rg, Topology::synthetic(1, 1), BfsOptions::default()).run(100);
    }

    #[test]
    fn relabeled_session_answers_in_external_ids() {
        let g = uniform_random(1200, 6, &mut rng_from_seed(44));
        let (rg, perm) = bfs_graph::degree_order(&g);
        let topo = Topology::synthetic(2, 2);
        let mut relabeled = BfsSession::new(&rg, topo, BfsOptions::default());
        let mut out = BfsOutput::default();
        for source in [0u32, 600, 1199, 0] {
            relabeled.run_reusing(source, &mut out);
            // Depths must match a traversal of the *original* graph from the
            // same external source, and parents must form a valid tree over
            // the original graph's edges — both only possible if every id in
            // the answer is external.
            let reference = serial_bfs(&g, source);
            assert_eq!(out.depths, reference.depths, "source {source}");
            validate_bfs_tree(&g, source, &out.depths, &out.parents).unwrap();
        }
        assert!(perm.len() == g.num_vertices());
    }

    #[test]
    fn hugepage_request_degrades_with_typed_reason_or_enables() {
        use crate::engine::HugepageStatus;
        let g = uniform_random(500, 4, &mut rng_from_seed(6));
        let opts = BfsOptions {
            huge_pages: true,
            ..Default::default()
        };
        let mut session = BfsSession::new(&g, Topology::synthetic(1, 2), opts);
        match session.engine().hugepage_status() {
            HugepageStatus::Disabled => panic!("huge_pages was requested"),
            HugepageStatus::Enabled => {}
            HugepageStatus::Unavailable(reason) => {
                // Typed, human-readable degradation — never a silent zero.
                assert!(!reason.to_string().is_empty());
            }
        }
        // Traversal is identical either way.
        let out = session.run(0);
        let reference = serial_bfs(&g, 0);
        assert_eq!(out.depths, reference.depths);
    }
}
