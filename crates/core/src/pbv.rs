//! Potential Boundary Vertex (`PBV`) bins: geometry and encodings.
//!
//! Phase I partitions the neighbors of frontier vertices into `N_PBV =
//! N_S · N_VIS` bins keyed by destination-vertex range (§III-B3). Bins are
//! aligned to two structures at once:
//!
//! * **socket homes** — a bin's vertex range lies inside one socket's
//!   `|V_NS|` stripe, so Phase II work on that bin touches only that
//!   socket's `DP`/`VIS` memory;
//! * **VIS partitions** — each socket's stripe is cut into `N_VIS` pieces so
//!   the VIS slice a bin touches fits in half the LLC (§III-A).
//!
//! Two stream encodings carry the (parent, neighbor) information
//! (§III-C(4) and footnote 4):
//!
//! * **Markers** — the frontier vertex id is written once to *every* bin
//!   with its sign bit set ("negating the id"); subsequent plain entries are
//!   neighbors whose parent is the latest marker. Costs `N_PBV + ρ` words
//!   per vertex.
//! * **Pairs** — explicit `(parent, neighbor)` word pairs. Costs `2ρ` words
//!   per vertex — cheaper when `N_PBV ≥ ρ`, which is how `Auto` chooses.

use serde::{Deserialize, Serialize};

use crate::VertexId;

/// Sign bit used to mark parent entries in the Markers encoding.
pub const MARKER_FLAG: u32 = 0x8000_0000;

/// Marks `v` as a parent entry.
#[inline]
pub fn encode_marker(v: VertexId) -> u32 {
    debug_assert_eq!(v & MARKER_FLAG, 0, "vertex id uses the sign bit");
    v | MARKER_FLAG
}

/// True if `x` is a parent marker.
#[inline]
pub fn is_marker(x: u32) -> bool {
    x & MARKER_FLAG != 0
}

/// Strips the marker flag.
#[inline]
pub fn decode_marker(x: u32) -> VertexId {
    x & !MARKER_FLAG
}

/// How (parent, neighbor) information is laid out in bins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PbvEncoding {
    /// Choose per run: Pairs when `N_PBV ≥ ρ` (average frontier degree),
    /// Markers otherwise — the paper's policy ("We switch between the two
    /// representations based on the actual graph parameters").
    #[default]
    Auto,
    /// Negated-id parent markers broadcast to every bin.
    Markers,
    /// Explicit (parent, neighbor) pairs.
    Pairs,
}

impl PbvEncoding {
    /// Resolves `Auto` for a graph with `n_pbv` bins and average visited
    /// degree `rho`.
    pub fn resolve(self, n_pbv: usize, rho: f64) -> ResolvedEncoding {
        match self {
            PbvEncoding::Markers => ResolvedEncoding::Markers,
            PbvEncoding::Pairs => ResolvedEncoding::Pairs,
            PbvEncoding::Auto => {
                if n_pbv as f64 >= rho {
                    ResolvedEncoding::Pairs
                } else {
                    ResolvedEncoding::Markers
                }
            }
        }
    }
}

/// A concrete encoding (no `Auto`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolvedEncoding {
    /// See [`PbvEncoding::Markers`].
    Markers,
    /// See [`PbvEncoding::Pairs`].
    Pairs,
}

impl ResolvedEncoding {
    /// Stream words that form one indivisible unit (segment boundaries must
    /// align to this).
    pub fn alignment(&self) -> usize {
        match self {
            ResolvedEncoding::Markers => 1,
            ResolvedEncoding::Pairs => 2,
        }
    }
}

/// Bin geometry: how vertex ids map to bins and bins to sockets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinGeometry {
    /// Total vertices `|V|`.
    pub num_vertices: usize,
    /// Sockets `N_S`.
    pub sockets: usize,
    /// VIS partitions per socket, rounded up to a power of two so the bin
    /// index is a single shift (SIMD-friendly, §III-C(4)).
    pub n_vis: usize,
    /// `|V_NS|`: vertices per socket stripe (power of two).
    pub vertices_per_socket: usize,
    /// `bin(v) = v >> bin_shift`.
    pub bin_shift: u32,
    /// Number of bins that can actually be non-empty
    /// (`ceil(|V| / bin_width)`, at most `N_S · N_VIS`).
    pub n_bins: usize,
}

impl BinGeometry {
    /// Geometry from the §III-A sizing rule: `N_VIS = ceil(|V| / (4·|C|))`
    /// rounded up to a power of two, `N_PBV = N_S · N_VIS`.
    pub fn from_llc(num_vertices: usize, sockets: usize, llc_bytes: u64) -> Self {
        let n_vis = (num_vertices as u64)
            .div_ceil(4 * llc_bytes)
            .max(1)
            .next_power_of_two() as usize;
        Self::with_n_vis(num_vertices, sockets, n_vis)
    }

    /// Geometry with an explicit VIS partition count (rounded to a power of
    /// two).
    pub fn with_n_vis(num_vertices: usize, sockets: usize, n_vis: usize) -> Self {
        assert!(sockets > 0, "need at least one socket");
        assert!(n_vis > 0, "need at least one VIS partition");
        let n_vis = n_vis.next_power_of_two();
        let vns = bfs_platform::topology::vertices_per_socket(num_vertices, sockets);
        let bin_width = (vns / n_vis).max(1);
        let bin_shift = bin_width.trailing_zeros();
        let n_bins = num_vertices.div_ceil(bin_width).max(1);
        Self {
            num_vertices,
            sockets,
            n_vis,
            vertices_per_socket: vns,
            bin_shift,
            n_bins,
        }
    }

    /// Bin of vertex `v`.
    #[inline]
    pub fn bin_of(&self, v: VertexId) -> usize {
        (v >> self.bin_shift) as usize
    }

    /// Socket owning bin `b` (the socket whose `DP`/`VIS` stripe the bin's
    /// vertices live on).
    #[inline]
    pub fn socket_of_bin(&self, b: usize) -> usize {
        let first_vertex = b << self.bin_shift;
        (first_vertex / self.vertices_per_socket).min(self.sockets - 1)
    }

    /// Vertex-id range covered by bin `b` (clamped to `|V|`).
    pub fn bin_vertex_range(&self, b: usize) -> std::ops::Range<u32> {
        let w = 1usize << self.bin_shift;
        let lo = (b * w).min(self.num_vertices);
        let hi = ((b + 1) * w).min(self.num_vertices);
        lo as u32..hi as u32
    }

    /// Bin width in vertices.
    pub fn bin_width(&self) -> usize {
        1 << self.bin_shift
    }
}

/// One thread's set of `N_PBV` bins for the current step.
#[derive(Clone, Debug)]
pub struct BinSet {
    bins: Vec<Vec<u32>>,
    encoding: ResolvedEncoding,
    current_parent: VertexId,
}

impl BinSet {
    /// Empty bins.
    pub fn new(n_bins: usize, encoding: ResolvedEncoding) -> Self {
        Self {
            bins: vec![Vec::new(); n_bins],
            encoding,
            current_parent: 0,
        }
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// The encoding in use.
    pub fn encoding(&self) -> ResolvedEncoding {
        self.encoding
    }

    /// Switches encoding (bins must be empty).
    pub fn set_encoding(&mut self, encoding: ResolvedEncoding) {
        debug_assert!(self.bins.iter().all(|b| b.is_empty()));
        self.encoding = encoding;
    }

    /// Clears all bins, keeping their capacity.
    pub fn clear(&mut self) {
        for b in &mut self.bins {
            b.clear();
        }
    }

    /// Starts binning the neighbors of frontier vertex `parent`:
    /// Markers broadcast the negated id to every bin (§III-C(4)); Pairs just
    /// remember it.
    #[inline]
    pub fn begin_vertex(&mut self, parent: VertexId) {
        self.current_parent = parent;
        if self.encoding == ResolvedEncoding::Markers {
            let m = encode_marker(parent);
            for b in &mut self.bins {
                b.push(m);
            }
        }
    }

    /// Appends neighbor `v` to bin `bin`.
    #[inline]
    pub fn push_neighbor(&mut self, bin: usize, v: VertexId) {
        debug_assert_eq!(v & MARKER_FLAG, 0);
        match self.encoding {
            ResolvedEncoding::Markers => self.bins[bin].push(v),
            ResolvedEncoding::Pairs => {
                let b = &mut self.bins[bin];
                b.push(self.current_parent);
                b.push(v);
            }
        }
    }

    /// Word length of bin `b`.
    pub fn bin_len(&self, b: usize) -> usize {
        self.bins[b].len()
    }

    /// Raw words of bin `b`.
    pub fn bin(&self, b: usize) -> &[u32] {
        &self.bins[b]
    }

    /// Total words across bins.
    pub fn total_len(&self) -> usize {
        self.bins.iter().map(|b| b.len()).sum()
    }

    /// Total capacity across bins in `u32` words — the high-water storage a
    /// reused `BinSet` retains between runs.
    pub fn capacity_words(&self) -> usize {
        self.bins.iter().map(|b| b.capacity()).sum()
    }

    /// Releases all retained bin capacity (the bins stay, emptied).
    pub fn shrink(&mut self) {
        for b in &mut self.bins {
            *b = Vec::new();
        }
    }
}

/// Decodes `(parent, neighbor)` units from a window `[start, end)` of a bin
/// stream (§III-C(6) `Access_Parent`). For the Markers encoding, a window
/// that starts mid-stream finds its initial parent by scanning backwards to
/// the latest marker — this is what makes the "at most two partial bins" of
/// the load-balanced division decodable by the stealing socket.
pub fn decode_window(
    data: &[u32],
    start: usize,
    end: usize,
    encoding: ResolvedEncoding,
    mut emit: impl FnMut(VertexId, VertexId),
) {
    debug_assert!(start <= end && end <= data.len());
    match encoding {
        ResolvedEncoding::Pairs => {
            debug_assert_eq!(start % 2, 0, "pair window must be aligned");
            debug_assert_eq!(end % 2, 0, "pair window must be aligned");
            for pair in data[start..end].chunks_exact(2) {
                emit(pair[0], pair[1]);
            }
        }
        ResolvedEncoding::Markers => {
            // Initial parent: latest marker at or before `start`.
            let mut parent = data[..start]
                .iter()
                .rev()
                .find(|&&x| is_marker(x))
                .map(|&x| decode_marker(x));
            for &x in &data[start..end] {
                if is_marker(x) {
                    parent = Some(decode_marker(x));
                } else {
                    emit(
                        parent.expect("marker stream must start with a parent marker"),
                        x,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_encoding_roundtrip() {
        let m = encode_marker(12345);
        assert!(is_marker(m));
        assert!(!is_marker(12345));
        assert_eq!(decode_marker(m), 12345);
    }

    #[test]
    fn geometry_paper_example() {
        // §III-A example scaled: |V| = 256M, |C| = 16MB → N_VIS = 4; on
        // 2 sockets N_PBV = 8 bins.
        let g = BinGeometry::from_llc(256 << 20, 2, 16 << 20);
        assert_eq!(g.n_vis, 4);
        assert_eq!(g.n_bins, 8);
        assert_eq!(g.vertices_per_socket, 128 << 20);
        assert_eq!(g.bin_width(), 32 << 20);
        assert_eq!(g.socket_of_bin(0), 0);
        assert_eq!(g.socket_of_bin(3), 0);
        assert_eq!(g.socket_of_bin(4), 1);
        assert_eq!(g.socket_of_bin(7), 1);
    }

    #[test]
    fn geometry_small_graph_single_bin_per_socket() {
        let g = BinGeometry::from_llc(1 << 20, 2, 8 << 20);
        assert_eq!(g.n_vis, 1);
        assert_eq!(g.n_bins, 2);
        assert_eq!(g.bin_of(0), 0);
        assert_eq!(g.bin_of((1 << 19) as u32), 1);
    }

    #[test]
    fn geometry_bins_partition_the_vertex_space() {
        for (n, s, nv) in [(100usize, 2usize, 2usize), (1 << 16, 3, 4), (7, 2, 8)] {
            let g = BinGeometry::with_n_vis(n, s, nv);
            let mut seen = 0usize;
            for b in 0..g.n_bins {
                let r = g.bin_vertex_range(b);
                for v in r.clone() {
                    assert_eq!(g.bin_of(v), b);
                }
                seen += r.len();
            }
            assert_eq!(seen, n, "bins must cover all vertices exactly once");
        }
    }

    #[test]
    fn geometry_socket_of_bin_matches_vertex_homes() {
        let g = BinGeometry::with_n_vis(1000, 3, 2);
        for b in 0..g.n_bins {
            let r = g.bin_vertex_range(b);
            if r.is_empty() {
                continue;
            }
            let home = (r.start as usize) / g.vertices_per_socket;
            assert_eq!(g.socket_of_bin(b), home.min(2));
        }
    }

    #[test]
    fn auto_encoding_switches_on_rho() {
        assert_eq!(
            PbvEncoding::Auto.resolve(8, 16.0),
            ResolvedEncoding::Markers
        );
        assert_eq!(PbvEncoding::Auto.resolve(16, 8.0), ResolvedEncoding::Pairs);
        assert_eq!(
            PbvEncoding::Markers.resolve(16, 8.0),
            ResolvedEncoding::Markers
        );
    }

    #[test]
    fn markers_binset_stream_shape() {
        let mut bs = BinSet::new(2, ResolvedEncoding::Markers);
        bs.begin_vertex(5);
        bs.push_neighbor(0, 10);
        bs.push_neighbor(1, 20);
        bs.begin_vertex(6);
        bs.push_neighbor(0, 11);
        // bin 0: [M5, 10, M6, 11]; bin 1: [M5, 20, M6]
        assert_eq!(bs.bin(0), &[encode_marker(5), 10, encode_marker(6), 11]);
        assert_eq!(bs.bin(1), &[encode_marker(5), 20, encode_marker(6)]);
        assert_eq!(bs.total_len(), 7);
    }

    #[test]
    fn pairs_binset_stream_shape() {
        let mut bs = BinSet::new(2, ResolvedEncoding::Pairs);
        bs.begin_vertex(5);
        bs.push_neighbor(0, 10);
        bs.push_neighbor(1, 20);
        assert_eq!(bs.bin(0), &[5, 10]);
        assert_eq!(bs.bin(1), &[5, 20]);
    }

    #[test]
    fn decode_full_marker_stream() {
        let mut bs = BinSet::new(1, ResolvedEncoding::Markers);
        bs.begin_vertex(1);
        bs.push_neighbor(0, 100);
        bs.push_neighbor(0, 101);
        bs.begin_vertex(2);
        bs.push_neighbor(0, 102);
        let mut out = Vec::new();
        decode_window(
            bs.bin(0),
            0,
            bs.bin_len(0),
            ResolvedEncoding::Markers,
            |p, v| out.push((p, v)),
        );
        assert_eq!(out, vec![(1, 100), (1, 101), (2, 102)]);
    }

    #[test]
    fn decode_partial_marker_window_recovers_parent() {
        let mut bs = BinSet::new(1, ResolvedEncoding::Markers);
        bs.begin_vertex(1);
        bs.push_neighbor(0, 100);
        bs.push_neighbor(0, 101);
        bs.push_neighbor(0, 102);
        // Window starting at index 2 (inside vertex 1's neighbors) must
        // back-scan to marker M1.
        let mut out = Vec::new();
        decode_window(bs.bin(0), 2, 4, ResolvedEncoding::Markers, |p, v| {
            out.push((p, v))
        });
        assert_eq!(out, vec![(1, 101), (1, 102)]);
    }

    #[test]
    fn decode_pairs_window() {
        let data = [1u32, 10, 2, 20, 3, 30];
        let mut out = Vec::new();
        decode_window(&data, 2, 6, ResolvedEncoding::Pairs, |p, v| {
            out.push((p, v))
        });
        assert_eq!(out, vec![(2, 20), (3, 30)]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut bs = BinSet::new(1, ResolvedEncoding::Markers);
        bs.begin_vertex(0);
        for i in 0..100 {
            bs.push_neighbor(0, i);
        }
        let cap = bs.bins[0].capacity();
        bs.clear();
        assert_eq!(bs.total_len(), 0);
        assert_eq!(bs.bins[0].capacity(), cap);
    }

    #[test]
    fn window_on_marker_boundary_assigns_to_next_segment() {
        // If a split lands exactly on a marker, the first segment emits
        // nothing for it and the second segment starts with it.
        let data = [encode_marker(1), 10, encode_marker(2), 20];
        let mut a = Vec::new();
        decode_window(&data, 0, 2, ResolvedEncoding::Markers, |p, v| {
            a.push((p, v))
        });
        let mut b = Vec::new();
        decode_window(&data, 2, 4, ResolvedEncoding::Markers, |p, v| {
            b.push((p, v))
        });
        assert_eq!(a, vec![(1, 10)]);
        assert_eq!(b, vec![(2, 20)]);
    }
}
