//! Load-balanced, locality-aware division of binned work (§III-B3(a)).
//!
//! At a phase boundary every thread has produced per-bin streams
//! (`PBV_t` bins in Phase I → Phase II, `BV_t` frontier chunks between
//! steps). The division problem: hand each socket an *equal number of
//! entries* while keeping each socket's share *contiguous in bin order*, so
//! that a socket receives a few complete bins and at most two partial bins —
//! bounded cross-socket sharing with perfect balance.
//!
//! The mechanism is an exact prefix split of the concatenated streams
//! (bin-major, owner-thread-minor). Splitting directly into
//! `N_S × lanes` parts nests the socket boundaries (threads are numbered
//! socket-major), so the per-thread division used by the engine and the
//! per-socket story of the paper coincide.
//!
//! [`divide_static`] implements the comparison scheme ("Multi-Socket aware",
//! Figure 5): bins are pinned to their home socket regardless of size,
//! trading balance for zero cross-socket bin traffic.

use serde::{Deserialize, Serialize};

/// One input stream: the words of bin `bin` produced by thread `owner`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stream {
    /// Bin index (destination-vertex range).
    pub bin: usize,
    /// Thread that produced the stream.
    pub owner: usize,
    /// Stream length in words.
    pub len: usize,
}

/// One unit of assigned work: the window `range` of the stream
/// `(bin, owner)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Bin index.
    pub bin: usize,
    /// Thread that produced the underlying stream.
    pub owner: usize,
    /// Word window within that stream.
    pub range: std::ops::Range<usize>,
}

impl Segment {
    /// Window length in words.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// True for an empty window.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

fn align_down(x: usize, align: usize) -> usize {
    x / align * align
}

/// Splits the concatenation of `streams` (in the given order) into `parts`
/// contiguous shares of equal word count (±`align`), with every segment
/// boundary aligned to `align` words *within its stream*. Streams of
/// non-multiple-of-`align` length are rejected (the Pairs encoding always
/// produces even-length streams).
///
/// Returns one segment list per part, in stream order.
pub fn divide_even(streams: &[Stream], parts: usize, align: usize) -> Vec<Vec<Segment>> {
    assert!(parts > 0, "need at least one part");
    assert!(align > 0, "alignment must be positive");
    for s in streams {
        assert_eq!(
            s.len % align,
            0,
            "stream (bin {}, owner {}) length {} not aligned to {align}",
            s.bin,
            s.owner,
            s.len
        );
    }
    let total: usize = streams.iter().map(|s| s.len).sum();
    let mut out = vec![Vec::new(); parts];
    // Part boundaries in the global word order.
    let bound = |i: usize| {
        if i >= parts {
            total
        } else {
            align_down(total * i / parts, align)
        }
    };
    let mut global = 0usize; // global offset of the current stream's start
    for s in streams {
        if s.len == 0 {
            global += s.len;
            continue;
        }
        let (s_lo, s_hi) = (global, global + s.len);
        // Which parts overlap [s_lo, s_hi)?
        for (p, seg_list) in out.iter_mut().enumerate() {
            let (p_lo, p_hi) = (bound(p), bound(p + 1));
            let lo = p_lo.max(s_lo);
            let hi = p_hi.min(s_hi);
            if lo < hi {
                seg_list.push(Segment {
                    bin: s.bin,
                    owner: s.owner,
                    range: lo - s_lo..hi - s_lo,
                });
            }
        }
        global = s_hi;
    }
    out
}

/// Static bin→socket assignment (the "Multi-Socket aware" scheme of
/// Figure 5): every stream goes to the socket `bin_socket(bin)` owning its
/// bin; each socket's streams are then divided evenly among its `lanes`
/// threads. Threads are numbered socket-major (`socket · lanes + lane`).
pub fn divide_static(
    streams: &[Stream],
    bin_socket: impl Fn(usize) -> usize,
    sockets: usize,
    lanes: usize,
    align: usize,
) -> Vec<Vec<Segment>> {
    assert!(sockets > 0 && lanes > 0);
    let mut per_socket: Vec<Vec<Stream>> = vec![Vec::new(); sockets];
    for s in streams {
        let sk = bin_socket(s.bin);
        assert!(sk < sockets, "bin {} maps to missing socket {sk}", s.bin);
        per_socket[sk].push(*s);
    }
    let mut out = Vec::with_capacity(sockets * lanes);
    for sk in per_socket {
        out.extend(divide_even(&sk, lanes, align));
    }
    out
}

/// Word share per socket under a bin→socket map — the measured `α` of §IV
/// (max fraction of accesses from any socket's memory) comes from this.
pub fn socket_shares(
    streams: &[Stream],
    bin_socket: impl Fn(usize) -> usize,
    sockets: usize,
) -> Vec<usize> {
    let mut shares = vec![0usize; sockets];
    for s in streams {
        shares[bin_socket(s.bin)] += s.len;
    }
    shares
}

/// `α` = max socket share / total (1/N_S = perfectly uniform, 1.0 = fully
/// skewed). Returns `1/sockets` when there is no work.
pub fn alpha(shares: &[usize]) -> f64 {
    let total: usize = shares.iter().sum();
    if total == 0 {
        return 1.0 / shares.len().max(1) as f64;
    }
    *shares.iter().max().unwrap() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lens(parts: &[Vec<Segment>]) -> Vec<usize> {
        parts
            .iter()
            .map(|p| p.iter().map(|s| s.len()).sum())
            .collect()
    }

    fn streams(ls: &[usize]) -> Vec<Stream> {
        ls.iter()
            .enumerate()
            .map(|(i, &len)| Stream {
                bin: i,
                owner: 0,
                len,
            })
            .collect()
    }

    #[test]
    fn even_division_is_exactly_even() {
        let s = streams(&[10, 10, 10, 10]);
        let parts = divide_even(&s, 4, 1);
        assert_eq!(lens(&parts), vec![10, 10, 10, 10]);
    }

    #[test]
    fn covers_everything_exactly_once() {
        let s = streams(&[7, 0, 13, 5, 1]);
        for parts_n in [1usize, 2, 3, 7] {
            let parts = divide_even(&s, parts_n, 1);
            let total: usize = lens(&parts).iter().sum();
            assert_eq!(total, 26);
            // Reconstruct per-stream coverage.
            for (i, st) in s.iter().enumerate() {
                let mut covered = vec![false; st.len];
                for p in &parts {
                    for seg in p {
                        if seg.bin == i {
                            for k in seg.range.clone() {
                                assert!(!covered[k], "double coverage");
                                covered[k] = true;
                            }
                        }
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap in stream {i}");
            }
        }
    }

    #[test]
    fn shares_differ_by_at_most_align() {
        let s = streams(&[997, 13, 501, 7]);
        let parts = divide_even(&s, 5, 1);
        let l = lens(&parts);
        let (mn, mx) = (l.iter().min().unwrap(), l.iter().max().unwrap());
        assert!(mx - mn <= 1, "{l:?}");
    }

    #[test]
    fn skewed_single_bin_is_still_balanced() {
        // The stress case: everything lands in one bin; the even division
        // must split that bin across all parts (partial bins).
        let s = streams(&[0, 1000, 0, 0]);
        let parts = divide_even(&s, 4, 1);
        assert_eq!(lens(&parts), vec![250, 250, 250, 250]);
        // Each part holds exactly one partial segment of bin 1.
        for p in &parts {
            assert_eq!(p.len(), 1);
            assert_eq!(p[0].bin, 1);
        }
    }

    #[test]
    fn at_most_two_partial_bins_per_socket() {
        // 8 equal bins over 2 sockets (parts): boundary lands on a bin edge
        // → whole bins only. Uneven bins → at most 2 partial per part.
        let s = streams(&[10, 20, 30, 5, 25, 10, 15, 12]);
        let parts = divide_even(&s, 2, 1);
        for p in &parts {
            let full_bins = p.iter().filter(|seg| seg.len() == s[seg.bin].len).count();
            let partial = p.len() - full_bins;
            assert!(partial <= 2, "part has {partial} partial bins");
        }
    }

    #[test]
    fn pair_alignment_respected() {
        let mut s = streams(&[10, 14, 6, 8]);
        s.iter_mut().for_each(|st| st.owner = st.bin);
        let parts = divide_even(&s, 3, 2);
        for p in &parts {
            for seg in p {
                assert_eq!(seg.range.start % 2, 0);
                assert_eq!(seg.range.end % 2, 0);
            }
        }
        let total: usize = lens(&parts).iter().sum();
        assert_eq!(total, 38);
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn rejects_misaligned_stream() {
        divide_even(&streams(&[3]), 2, 2);
    }

    #[test]
    fn empty_input_yields_empty_parts() {
        let parts = divide_even(&[], 3, 1);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn static_division_pins_bins_to_sockets() {
        // 4 bins, sockets own pairs: 0,1 → socket 0; 2,3 → socket 1.
        let s = streams(&[100, 100, 10, 10]);
        let parts = divide_static(&s, |b| b / 2, 2, 2, 1);
        // threads 0,1 (socket 0) share 200; threads 2,3 (socket 1) share 20.
        assert_eq!(lens(&parts), vec![100, 100, 10, 10]);
        for (t, p) in parts.iter().enumerate() {
            for seg in p {
                assert_eq!(seg.bin / 2, t / 2, "bin crossed its socket");
            }
        }
    }

    #[test]
    fn static_division_exhibits_imbalance_balanced_fixes_it() {
        let s = streams(&[1000, 0, 0, 0]); // all work in socket 0's bin
        let stat = divide_static(&s, |b| b / 2, 2, 1, 1);
        assert_eq!(lens(&stat), vec![1000, 0]);
        let bal = divide_even(&s, 2, 1);
        assert_eq!(lens(&bal), vec![500, 500]);
    }

    #[test]
    fn alpha_metric() {
        assert!((alpha(&[50, 50]) - 0.5).abs() < 1e-12);
        assert!((alpha(&[60, 40]) - 0.6).abs() < 1e-12);
        assert!((alpha(&[100, 0]) - 1.0).abs() < 1e-12);
        assert!((alpha(&[0, 0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn socket_shares_sum_to_total() {
        let s = streams(&[10, 20, 30, 40]);
        let shares = socket_shares(&s, |b| b % 2, 2);
        assert_eq!(shares, vec![40, 60]);
    }

    #[test]
    fn multi_owner_streams_keep_owner_identity() {
        let s = vec![
            Stream {
                bin: 0,
                owner: 0,
                len: 4,
            },
            Stream {
                bin: 0,
                owner: 1,
                len: 4,
            },
            Stream {
                bin: 1,
                owner: 0,
                len: 4,
            },
        ];
        let parts = divide_even(&s, 3, 1);
        let all: Vec<&Segment> = parts.iter().flatten().collect();
        assert!(all.iter().any(|seg| seg.owner == 1));
        let total: usize = all.iter().map(|seg| seg.len()).sum();
        assert_eq!(total, 12);
    }
}
