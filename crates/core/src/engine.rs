//! The complete load-balanced locality-aware BFS traversal (Figure 3).
//!
//! One SPMD region runs the per-step loop on every thread of the topology:
//!
//! ```text
//! for (step = 1; ; step++)
//!   Phase I   divide BV_t^C across threads (load-balanced);
//!             for each assigned frontier vertex: prefetch Adj, bin its
//!             neighbors into the thread's N_PBV PBV bins (SIMD kernel),
//!             broadcasting the parent marker
//!   barrier
//!   Phase II  divide the PBV bins across threads (whole bins + ≤2 partial
//!             bins per socket, in bin order so each VIS partition stays
//!             cache-resident); for each (parent, v): VIS filter → DP claim
//!             → append v to the thread-local BV_t^N
//!             rearrange BV_t^N by Adj page window (TLB)
//!   barrier   sum frontier sizes; stop when empty; swap BV arrays
//! ```
//!
//! Scheduling modes reproduce the three series of Figure 5; the VIS scheme
//! reproduces the series of Figure 4.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bfs_graph::CsrGraph;
use bfs_platform::{SocketPool, Topology};
use bfs_trace::{NoopSink, RunEvent, StepEvent, ThreadStep, TraceEvent, TraceSink};

use crate::balance::{divide_even, divide_static, Segment, Stream};
use crate::cell::ThreadOwned;
use crate::dp::{DepthParent, INF_DEPTH};
use crate::frontier::rearrange_frontier;
use crate::pbv::{decode_window, BinGeometry, BinSet, PbvEncoding, ResolvedEncoding};
use crate::prefetch::{prefetch_slice_element, DEFAULT_PREFETCH_DISTANCE};
use crate::simd::{bin_indices, BinKernel};
use crate::stats::TraversalStats;
use crate::vis::{Vis, VisScheme};
use crate::VertexId;

/// Work-distribution scheme (the Figure 5 series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduling {
    /// No multi-socket optimization: single-phase expansion, threads update
    /// VIS/DP directly from neighbor lists (maximum ping-pong).
    NoMultiSocketOpt,
    /// Two-phase with bins statically pinned to their home socket
    /// ("Multi-Socket aware"): no cross-socket bin traffic, but
    /// load-imbalance when bins are skewed.
    SocketAwareStatic,
    /// Two-phase with the even prefix split of §III-B3(a): whole bins plus
    /// at most two partial bins per socket.
    #[default]
    LoadBalanced,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct BfsOptions {
    /// VIS representation (Figure 4 series).
    pub vis: VisScheme,
    /// Work distribution (Figure 5 series).
    pub scheduling: Scheduling,
    /// Override the `N_VIS` partition count (default: the §III-A LLC rule).
    pub n_vis_override: Option<usize>,
    /// TLB-aware frontier rearrangement (§III-B3(b)).
    pub rearrange: bool,
    /// Adjacency prefetch distance in frontier entries (0 disables).
    pub prefetch_distance: usize,
    /// Bin-index kernel.
    pub bin_kernel: BinKernel,
    /// PBV stream encoding.
    pub encoding: PbvEncoding,
}

impl Default for BfsOptions {
    fn default() -> Self {
        Self {
            vis: VisScheme::Bit,
            scheduling: Scheduling::LoadBalanced,
            n_vis_override: None,
            rearrange: true,
            prefetch_distance: DEFAULT_PREFETCH_DISTANCE,
            bin_kernel: BinKernel::Simd,
            encoding: PbvEncoding::Auto,
        }
    }
}

/// Traversal output: depth and parent per vertex plus statistics.
#[derive(Clone, Debug, Default)]
pub struct BfsOutput {
    /// Depth per vertex (`INF_DEPTH` when unreached).
    pub depths: Vec<u32>,
    /// Parent per vertex (`VertexId::MAX` when unreached; source parents
    /// itself).
    pub parents: Vec<VertexId>,
    /// Run statistics.
    pub stats: TraversalStats,
}

/// Per-thread mutable traversal state (each field family lives in its own
/// [`ThreadOwned`] so the write/read epochs of the two phases never overlap
/// on one cell).
struct Counters {
    enqueued: u64,
    binning_ops: u64,
    phase1: Duration,
    phase2: Duration,
    rearrange: Duration,
}

/// Per-thread, per-step measurements, overwritten each step. The owning
/// thread writes its cell during the step; the leader reads every cell
/// between the step's last two barriers to assemble a
/// [`StepEvent`] — the same epoch protocol as the frontier buffers.
#[derive(Clone, Copy, Default)]
struct StepScratch {
    phase1_ns: u64,
    phase2_ns: u64,
    rearrange_ns: u64,
    enqueued: u64,
}

/// Per-run traversal state: the `DP`/`VIS` arrays, every per-thread
/// `ThreadOwned` buffer family, and the bookkeeping that lets all of it be
/// reused across queries.
///
/// A fresh [`BfsEngine::run`] builds one of these, uses it once, and drops
/// it. A [`crate::session::BfsSession`] keeps one alive: between runs
/// [`prepare`](Self::prepare) resets `DP` in O(1) (epoch bump), `VIS` in
/// O(touched vertices), and the frontier/bin buffers in O(threads) — no
/// O(|V|) zeroing and no allocation on the warm path.
pub(crate) struct RunState {
    pub(crate) dp: DepthParent,
    pub(crate) vis: Vis,
    pub(crate) bv_cur: ThreadOwned<Vec<VertexId>>,
    pub(crate) bv_next: ThreadOwned<Vec<VertexId>>,
    pub(crate) bins: ThreadOwned<BinSet>,
    pub(crate) scratch: ThreadOwned<(Vec<VertexId>, Vec<u32>)>,
    step_scratch: ThreadOwned<StepScratch>,
    /// Leader-only per-depth enqueue log (`frontier_sizes`).
    frontier_log: ThreadOwned<Vec<u64>>,
    /// Per-thread log of every vertex the run enqueued (sessions only):
    /// exactly the set whose VIS storage the next `prepare` must clear.
    touched: ThreadOwned<Vec<VertexId>>,
    /// Whether the run loop records enqueued vertices into `touched`.
    track_touched: bool,
    runs: u64,
    last_source: Option<VertexId>,
}

impl RunState {
    /// Fresh state sized for `engine`. `track_touched` enables the touched
    /// log a session needs for its O(touched) VIS reset; one-shot runs skip
    /// the bookkeeping.
    pub(crate) fn new(engine: &BfsEngine<'_>, track_touched: bool) -> Self {
        Self::with_epoch_bits(engine, track_touched, None)
    }

    /// [`RunState::new`] with an explicit `DP` stamp width (tests use tiny
    /// widths to exercise epoch wraparound).
    pub(crate) fn with_epoch_bits(
        engine: &BfsEngine<'_>,
        track_touched: bool,
        epoch_bits: Option<u32>,
    ) -> Self {
        let n = engine.graph.num_vertices();
        let nthreads = engine.topology.total_threads();
        Self {
            dp: match epoch_bits {
                Some(bits) => DepthParent::with_epoch_bits(n, bits),
                None => DepthParent::new(n),
            },
            vis: Vis::new(engine.options.vis, n),
            bv_cur: ThreadOwned::from_fn(nthreads, |_| Vec::new()),
            bv_next: ThreadOwned::from_fn(nthreads, |_| Vec::new()),
            bins: ThreadOwned::from_fn(nthreads, |_| {
                BinSet::new(engine.geometry.n_bins, engine.encoding)
            }),
            scratch: ThreadOwned::from_fn(nthreads, |_| (Vec::new(), Vec::new())),
            step_scratch: ThreadOwned::from_fn(nthreads, |_| StepScratch::default()),
            frontier_log: ThreadOwned::from_fn(1, |_| Vec::new()),
            touched: ThreadOwned::from_fn(nthreads, |_| Vec::new()),
            track_touched,
            runs: 0,
            last_source: None,
        }
    }

    /// Number of runs this state has served.
    pub(crate) fn runs(&self) -> u64 {
        self.runs
    }

    /// Sum of frontier/bin/scratch/touched buffer capacities in `u32`
    /// words — the high-water storage the session retains across runs.
    pub(crate) fn buffer_capacity_words(&self) -> usize {
        let mut words = 0;
        for t in 0..self.bv_cur.len() {
            words += self.bv_cur.read(t, Vec::capacity);
            words += self.bv_next.read(t, Vec::capacity);
            words += self.bins.read(t, BinSet::capacity_words);
            words += self.scratch.read(t, |(a, b)| a.capacity() + b.capacity());
            words += self.touched.read(t, Vec::capacity);
        }
        words
    }

    /// Releases all retained frontier/bin/scratch capacity (the documented
    /// shrink policy: buffers keep their high-water mark until the owner
    /// explicitly shrinks; the next run regrows them).
    pub(crate) fn shrink(&mut self) {
        for f in self.bv_cur.iter_mut() {
            *f = Vec::new();
        }
        for f in self.bv_next.iter_mut() {
            *f = Vec::new();
        }
        for b in self.bins.iter_mut() {
            b.shrink();
        }
        for (a, b) in self.scratch.iter_mut() {
            *a = Vec::new();
            *b = Vec::new();
        }
        for t in self.touched.iter_mut() {
            *t = Vec::new();
        }
    }

    /// Resets whatever the previous run dirtied and seeds `source`: `DP` by
    /// epoch bump (O(1), with the documented periodic full re-zero on stamp
    /// wraparound), `VIS` by clearing exactly the storage the previous run's
    /// enqueued vertices cover (O(touched)), buffers by `clear` (capacity
    /// kept).
    pub(crate) fn prepare(&mut self, source: VertexId) {
        if self.runs > 0 {
            self.dp.advance_epoch();
            // Split borrow: VIS is cleared from the touched lists in place.
            let Self { vis, touched, .. } = self;
            for list in touched.iter_mut() {
                vis.clear_touched(list);
                list.clear();
            }
            // The source is marked by `prepare` itself, never enqueued, so
            // the touched lists do not cover it.
            if let Some(s) = self.last_source.take() {
                self.vis.clear_touched(&[s]);
            }
            for f in self.bv_cur.iter_mut() {
                f.clear();
            }
            for f in self.bv_next.iter_mut() {
                f.clear();
            }
            for log in self.frontier_log.iter_mut() {
                log.clear();
            }
        }
        self.runs += 1;
        self.last_source = Some(source);
        self.dp.set(source, 0, source);
        self.vis.mark(source);
        self.bv_cur.with_mut(0, |f| f.push(source));
        // `frontier_sizes[0]` is the source frontier (see `TraversalStats`).
        self.frontier_log.with_mut(0, |log| log.push(1));
    }
}

/// The BFS engine: graph + topology + options.
pub struct BfsEngine<'g> {
    graph: &'g CsrGraph,
    topology: Topology,
    pool: SocketPool,
    options: BfsOptions,
    geometry: BinGeometry,
    encoding: ResolvedEncoding,
}

impl<'g> BfsEngine<'g> {
    /// Builds an engine. The bin geometry follows §III-A/§III-C(1) from the
    /// topology's LLC size unless overridden.
    pub fn new(graph: &'g CsrGraph, topology: Topology, options: BfsOptions) -> Self {
        topology.validate();
        assert!(
            graph.num_vertices() <= bfs_graph::MAX_VERTICES,
            "graph too large for the marker encoding"
        );
        let n = graph.num_vertices();
        let geometry = match options.n_vis_override {
            Some(nv) => BinGeometry::with_n_vis(n, topology.sockets, nv),
            None => BinGeometry::from_llc(n, topology.sockets, topology.llc_bytes),
        };
        let rho_estimate = graph.average_degree().max(1.0);
        let encoding = options.encoding.resolve(geometry.n_bins, rho_estimate);
        Self {
            graph,
            topology,
            pool: SocketPool::new(topology),
            options,
            geometry,
            encoding,
        }
    }

    /// The engine's bin geometry (N_VIS, N_PBV, bin↔socket map).
    pub fn geometry(&self) -> &BinGeometry {
        &self.geometry
    }

    /// The resolved PBV encoding.
    pub fn encoding(&self) -> ResolvedEncoding {
        self.encoding
    }

    /// The options in effect.
    pub fn options(&self) -> &BfsOptions {
        &self.options
    }

    /// Runs a traversal from `source`.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn run(&self, source: VertexId) -> BfsOutput {
        self.run_traced(source, &NoopSink)
    }

    /// Runs a traversal from `source`, emitting one [`RunEvent`] and one
    /// [`StepEvent`] per BFS level into `sink`.
    ///
    /// Event assembly (per-thread timing vectors, bin occupancies, the `DP`
    /// scan behind per-step duplicate counts) only happens when
    /// `sink.enabled()`; with a [`NoopSink`] this is exactly [`run`](Self::run).
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn run_traced(&self, source: VertexId, sink: &dyn TraceSink) -> BfsOutput {
        let mut state = RunState::new(self, false);
        let mut out = BfsOutput::default();
        self.run_with_state(&mut state, source, sink, "engine", &mut out);
        out
    }

    /// The traversal core: resets and seeds `state` for `source`, runs the
    /// SPMD region of Figure 3 on the persistent pool, and writes results
    /// into `out`, reusing its allocations.
    ///
    /// [`run_traced`](Self::run_traced) calls this with a throwaway
    /// [`RunState`]; a [`crate::session::BfsSession`] calls it with a
    /// long-lived one, which is what makes warm queries allocation-free for
    /// frontier, bin, `DP`, and `VIS` storage.
    pub(crate) fn run_with_state(
        &self,
        state: &mut RunState,
        source: VertexId,
        sink: &dyn TraceSink,
        engine_name: &str,
        out: &mut BfsOutput,
    ) {
        let n = self.graph.num_vertices();
        assert!((source as usize) < n, "source out of range");
        let t0 = Instant::now();
        let nthreads = self.topology.total_threads();
        let tracing = sink.enabled();
        if tracing {
            sink.record(&TraceEvent::Run(RunEvent {
                engine: engine_name.to_string(),
                vertices: n as u64,
                edges: self.graph.num_edges(),
                source,
                sockets: self.topology.sockets,
                lanes_per_socket: self.topology.lanes_per_socket,
                threads: nthreads,
                n_vis: Some(self.geometry.n_vis),
                n_pbv: Some(self.geometry.n_bins),
                encoding: Some(format!("{:?}", self.encoding)),
                scheduling: Some(format!("{:?}", self.options.scheduling)),
                vis: Some(format!("{:?}", self.options.vis)),
                nodes: None,
            }));
        }

        state.prepare(source);
        // The SPMD region only needs shared access; per-thread mutation goes
        // through the `ThreadOwned` cells.
        let state = &*state;
        let track_touched = state.track_touched;

        // Frontier-size accumulators, double-buffered by step parity (reset
        // happens a full barrier before the next use of a slot).
        let totals = [AtomicU64::new(0), AtomicU64::new(0)];

        let counters = self.pool.run(|ctx| {
            let tid = ctx.thread_id;
            let mut c = Counters {
                enqueued: 0,
                binning_ops: 0,
                phase1: Duration::ZERO,
                phase2: Duration::ZERO,
                rearrange: Duration::ZERO,
            };
            let mut step: u32 = 1;
            loop {
                assert!(
                    step <= n as u32 + 1,
                    "BFS failed to terminate after {step} steps"
                );
                if tid == 0 {
                    totals[(step & 1) as usize].store(0, Ordering::Relaxed);
                }
                let p1 = Instant::now();
                match self.options.scheduling {
                    Scheduling::NoMultiSocketOpt => {
                        self.expand_direct(
                            ctx.thread_id,
                            nthreads,
                            &state.bv_cur,
                            &state.bv_next,
                            &state.dp,
                            &state.vis,
                            step,
                            &mut c,
                        );
                    }
                    _ => {
                        self.phase_one(
                            tid,
                            nthreads,
                            &state.bv_cur,
                            &state.bins,
                            &state.scratch,
                            &mut c,
                        );
                    }
                }
                let d1 = p1.elapsed();
                c.phase1 += d1;
                ctx.barrier();

                let mut d2 = Duration::ZERO;
                if self.options.scheduling != Scheduling::NoMultiSocketOpt {
                    let p2 = Instant::now();
                    self.phase_two(
                        tid,
                        nthreads,
                        &state.bins,
                        &state.bv_next,
                        &state.dp,
                        &state.vis,
                        step,
                        &mut c,
                    );
                    d2 = p2.elapsed();
                    c.phase2 += d2;
                }

                let mut dr = Duration::ZERO;
                if self.options.rearrange {
                    let pr = Instant::now();
                    state.scratch.with_mut(tid, |(tmp, _)| {
                        state.bv_next.with_mut(tid, |f| {
                            rearrange_frontier(
                                f,
                                self.graph,
                                self.topology.page_bytes,
                                self.topology.tlb_entries,
                                tmp,
                            );
                        });
                    });
                    dr = pr.elapsed();
                    c.rearrange += dr;
                }
                let mine = state.bv_next.with_mut(tid, |f| {
                    if track_touched {
                        // Log the vertices this run marks so the next
                        // `prepare` can clear VIS in O(touched).
                        state.touched.with_mut(tid, |t| t.extend_from_slice(f));
                    }
                    f.len() as u64
                });
                c.enqueued += mine;
                if tracing {
                    state.step_scratch.with_mut(tid, |s| {
                        *s = StepScratch {
                            phase1_ns: d1.as_nanos() as u64,
                            phase2_ns: d2.as_nanos() as u64,
                            rearrange_ns: dr.as_nanos() as u64,
                            enqueued: mine,
                        };
                    });
                }
                totals[(step & 1) as usize].fetch_add(mine, Ordering::Relaxed);
                ctx.barrier();
                let total = totals[(step & 1) as usize].load(Ordering::Relaxed);
                if tid == 0 && total > 0 {
                    state.frontier_log.with_mut(0, |log| log.push(total));
                    if tracing {
                        self.emit_step_event(
                            sink,
                            step,
                            total,
                            nthreads,
                            &state.step_scratch,
                            &state.bins,
                            &state.dp,
                        );
                    }
                }
                // Swap own frontier buffers; clear the consumed one.
                state.bv_cur.with_mut(tid, |cur| {
                    state.bv_next.with_mut(tid, |next| {
                        std::mem::swap(cur, next);
                        next.clear();
                    });
                });
                ctx.barrier();
                if total == 0 {
                    break;
                }
                step += 1;
            }
            c
        });

        let total_time = t0.elapsed();
        state.dp.fill_arrays(&mut out.depths, &mut out.parents);
        let mut visited = 0u64;
        let mut traversed = 0u64;
        #[allow(clippy::needless_range_loop)] // v is a vertex id used against two arrays
        for v in 0..n {
            if out.depths[v] != INF_DEPTH {
                visited += 1;
                traversed += self.graph.degree(v as u32) as u64;
            }
        }
        // Reuse `out`'s log allocation instead of taking the state's.
        let mut frontier_sizes = std::mem::take(&mut out.stats.frontier_sizes);
        frontier_sizes.clear();
        state
            .frontier_log
            .read(0, |log| frontier_sizes.extend_from_slice(log));
        let enqueued: u64 = counters.iter().map(|c| c.enqueued).sum();
        out.stats = TraversalStats {
            steps: frontier_sizes.len() as u32 - 1,
            visited_vertices: visited,
            traversed_edges: traversed,
            duplicate_enqueues: (enqueued + 1).saturating_sub(visited),
            frontier_sizes,
            phase1_time: counters.iter().map(|c| c.phase1).max().unwrap_or_default(),
            phase2_time: counters.iter().map(|c| c.phase2).max().unwrap_or_default(),
            rearrange_time: counters
                .iter()
                .map(|c| c.rearrange)
                .max()
                .unwrap_or_default(),
            total_time,
            binning_ops: counters.iter().map(|c| c.binning_ops).sum(),
        };
    }

    /// Assembles and records the step's [`StepEvent`] on the leader, between
    /// the step's last two barriers: every thread's `step_scratch` and bins
    /// are in their read epoch, and nobody writes `DP` until the next step.
    #[allow(clippy::too_many_arguments)]
    fn emit_step_event(
        &self,
        sink: &dyn TraceSink,
        step: u32,
        total: u64,
        nthreads: usize,
        step_scratch: &ThreadOwned<StepScratch>,
        bins: &ThreadOwned<BinSet>,
        dp: &DepthParent,
    ) {
        let threads: Vec<ThreadStep> = (0..nthreads)
            .map(|t| {
                step_scratch.read(t, |s| ThreadStep {
                    thread: t,
                    phase1_ns: s.phase1_ns,
                    phase2_ns: s.phase2_ns,
                    rearrange_ns: s.rearrange_ns,
                    enqueued: s.enqueued,
                })
            })
            .collect();
        let bin_occupancy: Vec<u64> = if self.options.scheduling == Scheduling::NoMultiSocketOpt {
            Vec::new()
        } else {
            (0..self.geometry.n_bins)
                .map(|b| {
                    (0..nthreads)
                        .map(|t| bins.read(t, |bs| bs.bin_len(b)) as u64)
                        .sum()
                })
                .collect()
        };
        // Distinct vertices claimed this step: an O(|V|) relaxed scan, paid
        // only when tracing. Enqueues beyond that are the benign-race
        // duplicates of this step.
        let claimed = (0..self.graph.num_vertices() as u32)
            .filter(|&v| dp.depth(v) == step)
            .count() as u64;
        sink.record(&TraceEvent::Step(StepEvent {
            step,
            frontier: total,
            duplicates: total.saturating_sub(claimed),
            threads,
            bin_occupancy,
        }));
    }

    /// Phase I: bin the neighbors of this thread's share of the frontier.
    fn phase_one(
        &self,
        tid: usize,
        nthreads: usize,
        bv_cur: &ThreadOwned<Vec<VertexId>>,
        bins: &ThreadOwned<BinSet>,
        scratch: &ThreadOwned<(Vec<VertexId>, Vec<u32>)>,
        c: &mut Counters,
    ) {
        // Deterministic division: every thread derives the same plan from
        // the (now read-only) frontier lengths.
        let streams: Vec<Stream> = (0..nthreads)
            .map(|t| Stream {
                bin: t,
                owner: t,
                len: bv_cur.read(t, |f| f.len()),
            })
            .collect();
        let my_segments: Vec<Segment> = match self.options.scheduling {
            Scheduling::SocketAwareStatic => {
                let lanes = self.topology.lanes_per_socket;
                divide_static(&streams, |b| b / lanes, self.topology.sockets, lanes, 1)
                    .swap_remove(tid)
            }
            _ => divide_even(&streams, nthreads, 1).swap_remove(tid),
        };
        let pref = self.options.prefetch_distance;
        let offsets = self.graph.offsets();
        let raw = self.graph.raw_neighbors();
        // The bin-index buffer lives in the thread's scratch cell so its
        // allocation is reused across steps instead of regrown each step.
        scratch.with_mut(tid, |(_, idx_buf)| {
            bins.with_mut(tid, |my_bins| {
                my_bins.clear();
                for seg in &my_segments {
                    bv_cur.read(seg.owner, |frontier| {
                        let window = &frontier[seg.range.clone()];
                        for (k, &u) in window.iter().enumerate() {
                            if pref > 0 {
                                if let Some(&next_u) = window.get(k + pref) {
                                    // Prefetch the adjacency pointer and the
                                    // first neighbor line (§III-C(3)).
                                    prefetch_slice_element(offsets, next_u as usize);
                                    let off = offsets[next_u as usize] as usize;
                                    prefetch_slice_element(raw, off);
                                }
                            }
                            let neighbors = self.graph.neighbors(u);
                            my_bins.begin_vertex(u);
                            c.binning_ops += bin_indices(
                                self.options.bin_kernel,
                                neighbors,
                                self.geometry.bin_shift,
                                idx_buf,
                            );
                            for (&v, &b) in neighbors.iter().zip(idx_buf.iter()) {
                                my_bins.push_neighbor(b as usize, v);
                            }
                        }
                    });
                }
            });
        });
    }

    /// Phase II: walk assigned bin windows, filter through VIS, claim DP,
    /// build the next frontier.
    #[allow(clippy::too_many_arguments)]
    fn phase_two(
        &self,
        tid: usize,
        nthreads: usize,
        bins: &ThreadOwned<BinSet>,
        bv_next: &ThreadOwned<Vec<VertexId>>,
        dp: &DepthParent,
        vis: &Vis,
        step: u32,
        _c: &mut Counters,
    ) {
        let align = self.encoding.alignment();
        // Bin-major stream order: a part's share is contiguous in bin order,
        // which is both the locality story (§III-B3(a)) and the VIS
        // partition residency story (§III-A).
        let mut streams = Vec::with_capacity(self.geometry.n_bins * nthreads);
        for b in 0..self.geometry.n_bins {
            for t in 0..nthreads {
                streams.push(Stream {
                    bin: b,
                    owner: t,
                    len: bins.read(t, |bs| bs.bin_len(b)),
                });
            }
        }
        let my_segments: Vec<Segment> = match self.options.scheduling {
            Scheduling::SocketAwareStatic => divide_static(
                &streams,
                |b| self.geometry.socket_of_bin(b),
                self.topology.sockets,
                self.topology.lanes_per_socket,
                align,
            )
            .swap_remove(tid),
            _ => divide_even(&streams, nthreads, align).swap_remove(tid),
        };
        bv_next.with_mut(tid, |next| {
            for seg in &my_segments {
                bins.read(seg.owner, |bs| {
                    decode_window(
                        bs.bin(seg.bin),
                        seg.range.start,
                        seg.range.end,
                        self.encoding,
                        |parent, v| {
                            if vis.definitely_visited_or_mark(v) {
                                return;
                            }
                            let claimed = match self.options.vis {
                                // The atomic fetch_or already guarantees
                                // exactly-once, so the DP write is a plain
                                // store (Figure 2(a)).
                                VisScheme::AtomicBit | VisScheme::AtomicBitTest => {
                                    dp.set(v, step, parent);
                                    true
                                }
                                _ => dp.claim_relaxed(v, step, parent),
                            };
                            if claimed {
                                next.push(v);
                            }
                        },
                    );
                });
            }
        });
    }

    /// Single-phase expansion for [`Scheduling::NoMultiSocketOpt`]: no
    /// binning, direct spatially-incoherent VIS/DP updates.
    #[allow(clippy::too_many_arguments)]
    fn expand_direct(
        &self,
        tid: usize,
        nthreads: usize,
        bv_cur: &ThreadOwned<Vec<VertexId>>,
        bv_next: &ThreadOwned<Vec<VertexId>>,
        dp: &DepthParent,
        vis: &Vis,
        step: u32,
        _c: &mut Counters,
    ) {
        let streams: Vec<Stream> = (0..nthreads)
            .map(|t| Stream {
                bin: t,
                owner: t,
                len: bv_cur.read(t, |f| f.len()),
            })
            .collect();
        let my_segments = divide_even(&streams, nthreads, 1).swap_remove(tid);
        let pref = self.options.prefetch_distance;
        let offsets = self.graph.offsets();
        bv_next.with_mut(tid, |next| {
            for seg in &my_segments {
                bv_cur.read(seg.owner, |frontier| {
                    let window = &frontier[seg.range.clone()];
                    for (k, &u) in window.iter().enumerate() {
                        if pref > 0 {
                            if let Some(&next_u) = window.get(k + pref) {
                                prefetch_slice_element(offsets, next_u as usize);
                            }
                        }
                        for &v in self.graph.neighbors(u) {
                            if vis.definitely_visited_or_mark(v) {
                                continue;
                            }
                            let claimed = match self.options.vis {
                                VisScheme::AtomicBit | VisScheme::AtomicBitTest => {
                                    dp.set(v, step, u);
                                    true
                                }
                                _ => dp.claim_relaxed(v, step, u),
                            };
                            if claimed {
                                next.push(v);
                            }
                        }
                    }
                });
            }
        });
    }
}

/// A single-cell `ThreadOwned` used as a leader-only log (keeps the cell
/// protocol uniform instead of adding a mutex for one vector — only thread 0
/// ever touches it during the run).
pub(crate) fn parking_lot_free_log(capacity_hint: usize) -> ThreadOwned<Vec<u64>> {
    ThreadOwned::from_fn(1, |_| Vec::with_capacity(capacity_hint.min(1024)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use crate::validate::validate_bfs_tree;
    use bfs_graph::gen::classic::{binary_tree, lollipop, path, star, two_cliques};
    use bfs_graph::gen::rmat::{rmat, RmatConfig};
    use bfs_graph::gen::stress::stress_bipartite;
    use bfs_graph::gen::uniform::uniform_random;
    use bfs_graph::rng::rng_from_seed;

    fn check_against_serial(g: &CsrGraph, source: VertexId, topo: Topology, opts: BfsOptions) {
        let engine = BfsEngine::new(g, topo, opts);
        let out = engine.run(source);
        let reference = serial_bfs(g, source);
        assert_eq!(
            out.depths, reference.depths,
            "depths diverge (opts {opts:?})"
        );
        validate_bfs_tree(g, source, &out.depths, &out.parents).unwrap();
        assert_eq!(out.stats.visited_vertices, reference.visited);
        assert_eq!(out.stats.traversed_edges, reference.traversed_edges);
        assert_eq!(out.stats.steps, reference.max_depth);
    }

    #[test]
    fn classic_graphs_all_schedulings() {
        for scheduling in [
            Scheduling::NoMultiSocketOpt,
            Scheduling::SocketAwareStatic,
            Scheduling::LoadBalanced,
        ] {
            for g in [path(17), star(9), binary_tree(31), lollipop(6, 10)] {
                check_against_serial(
                    &g,
                    0,
                    Topology::synthetic(2, 2),
                    BfsOptions {
                        scheduling,
                        ..Default::default()
                    },
                );
            }
        }
    }

    #[test]
    fn all_vis_schemes_match_serial_on_random_graphs() {
        let g = uniform_random(2000, 8, &mut rng_from_seed(42));
        for vis in VisScheme::ALL {
            check_against_serial(
                &g,
                0,
                Topology::synthetic(2, 2),
                BfsOptions {
                    vis,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn rmat_with_many_threads_and_partitions() {
        let g = rmat(&RmatConfig::paper(11, 8), &mut rng_from_seed(7));
        let src = bfs_graph::stats::nth_non_isolated(&g, 0).unwrap();
        check_against_serial(
            &g,
            src,
            Topology::synthetic(2, 4),
            BfsOptions {
                n_vis_override: Some(4),
                ..Default::default()
            },
        );
    }

    #[test]
    fn stress_graph_all_schedulings() {
        let g = stress_bipartite(512, 6, &mut rng_from_seed(3));
        for scheduling in [
            Scheduling::NoMultiSocketOpt,
            Scheduling::SocketAwareStatic,
            Scheduling::LoadBalanced,
        ] {
            check_against_serial(
                &g,
                0,
                Topology::synthetic(2, 2),
                BfsOptions {
                    scheduling,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn pairs_and_markers_encodings_agree() {
        let g = uniform_random(1000, 4, &mut rng_from_seed(9));
        for encoding in [PbvEncoding::Markers, PbvEncoding::Pairs, PbvEncoding::Auto] {
            check_against_serial(
                &g,
                0,
                Topology::synthetic(2, 2),
                BfsOptions {
                    encoding,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn no_rearrange_no_prefetch_scalar_kernel() {
        let g = uniform_random(800, 6, &mut rng_from_seed(5));
        check_against_serial(
            &g,
            0,
            Topology::synthetic(1, 3),
            BfsOptions {
                rearrange: false,
                prefetch_distance: 0,
                bin_kernel: BinKernel::Scalar,
                ..Default::default()
            },
        );
    }

    #[test]
    fn disconnected_graph_terminates() {
        let g = two_cliques(10, 10);
        check_against_serial(&g, 0, Topology::synthetic(2, 2), BfsOptions::default());
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::empty(1);
        let engine = BfsEngine::new(&g, Topology::synthetic(1, 2), BfsOptions::default());
        let out = engine.run(0);
        assert_eq!(out.depths, vec![0]);
        assert_eq!(out.stats.visited_vertices, 1);
        assert_eq!(out.stats.steps, 0);
        // The source frontier is logged even when nothing else is reached.
        assert_eq!(out.stats.frontier_sizes, vec![1]);
    }

    #[test]
    fn oversubscribed_threads_on_tiny_graph() {
        let g = path(3);
        check_against_serial(&g, 1, Topology::synthetic(4, 4), BfsOptions::default());
    }

    #[test]
    fn duplicate_rate_is_tiny() {
        let g = uniform_random(5000, 16, &mut rng_from_seed(11));
        let engine = BfsEngine::new(&g, Topology::synthetic(2, 2), BfsOptions::default());
        let out = engine.run(0);
        assert!(
            out.stats.duplicate_rate() < 0.01,
            "duplicate rate {} far above the paper's 0.2%",
            out.stats.duplicate_rate()
        );
    }

    #[test]
    fn frontier_sizes_sum_to_visited_minus_source() {
        let g = uniform_random(1000, 4, &mut rng_from_seed(13));
        let engine = BfsEngine::new(&g, Topology::synthetic(2, 2), BfsOptions::default());
        let out = engine.run(0);
        // `frontier_sizes[0]` is the source; later entries are per-depth
        // enqueues, duplicates included.
        assert_eq!(out.stats.frontier_sizes[0], 1);
        assert_eq!(out.stats.steps as usize, out.stats.frontier_sizes.len() - 1);
        let sum: u64 = out.stats.frontier_sizes[1..].iter().sum();
        assert_eq!(
            sum,
            out.stats.visited_vertices - 1 + out.stats.duplicate_enqueues
        );
    }

    #[test]
    fn traced_run_emits_run_and_step_events() {
        use bfs_trace::{RingSink, TraceEvent};
        let g = uniform_random(1500, 6, &mut rng_from_seed(21));
        let engine = BfsEngine::new(&g, Topology::synthetic(2, 2), BfsOptions::default());
        let ring = RingSink::new(4096);
        let out = engine.run_traced(0, &ring);
        let events = ring.snapshot();
        let runs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Run(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].engine, "engine");
        assert_eq!(runs[0].vertices, 1500);
        assert_eq!(runs[0].threads, 4);
        assert_eq!(runs[0].n_pbv, Some(engine.geometry().n_bins));
        let steps: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Step(s) => Some(s),
                _ => None,
            })
            .collect();
        // One step event per depth level, aligned with frontier_sizes[1..].
        assert_eq!(steps.len(), out.stats.steps as usize);
        for (i, s) in steps.iter().enumerate() {
            assert_eq!(s.step as usize, i + 1);
            assert_eq!(s.frontier, out.stats.frontier_sizes[i + 1]);
            assert_eq!(s.threads.len(), 4);
            let enq: u64 = s.threads.iter().map(|t| t.enqueued).sum();
            assert_eq!(enq, s.frontier);
            assert_eq!(s.bin_occupancy.len(), engine.geometry().n_bins);
        }
        // Per-step duplicates sum to the run's total.
        let dups: u64 = steps.iter().map(|s| s.duplicates).sum();
        assert_eq!(dups, out.stats.duplicate_enqueues);
        // Tracing must not perturb results: depths match an untraced run.
        assert_eq!(out.depths, engine.run(0).depths);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn rejects_bad_source() {
        let g = path(3);
        BfsEngine::new(&g, Topology::synthetic(1, 1), BfsOptions::default()).run(9);
    }

    #[test]
    fn geometry_is_exposed() {
        let g = uniform_random(1 << 12, 4, &mut rng_from_seed(1));
        let engine = BfsEngine::new(
            &g,
            Topology::synthetic(2, 2),
            BfsOptions {
                n_vis_override: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(engine.geometry().n_vis, 2);
        assert_eq!(engine.geometry().n_bins, 4);
    }
}
