//! The complete load-balanced locality-aware BFS traversal (Figure 3).
//!
//! One SPMD region runs the per-step loop on every thread of the topology:
//!
//! ```text
//! for (step = 1; ; step++)
//!   Phase I   divide BV_t^C across threads (load-balanced);
//!             for each assigned frontier vertex: prefetch Adj, bin its
//!             neighbors into the thread's N_PBV PBV bins (SIMD kernel),
//!             broadcasting the parent marker
//!   barrier
//!   Phase II  divide the PBV bins across threads (whole bins + ≤2 partial
//!             bins per socket, in bin order so each VIS partition stays
//!             cache-resident); for each (parent, v): VIS filter → DP claim
//!             → append v to the thread-local BV_t^N
//!             rearrange BV_t^N by Adj page window (TLB)
//!   barrier   sum frontier sizes; stop when empty; swap BV arrays
//! ```
//!
//! Scheduling modes reproduce the three series of Figure 5; the VIS scheme
//! reproduces the series of Figure 4.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bfs_graph::CsrGraph;
use bfs_metrics::{Counter as Metric, Hist as MetricHist, MetricsRegistry, MetricsSnapshot};
use bfs_perf::{PerfCounts, PerfGroup, PerfUnavailable, ENGINE_EVENTS};
use bfs_platform::{HugepageUnavailable, SocketPool, Topology};
use bfs_trace::{NoopSink, RunEvent, StepEvent, ThreadStep, TraceEvent, TraceSink};

use crate::balance::{divide_even, divide_static, Segment, Stream};
use crate::cell::ThreadOwned;
use crate::direction::{
    count_switches, DecisionInputs, Direction, DirectionPolicy, FrontierBitmap,
};
use crate::dp::{DepthParent, INF_DEPTH};
use crate::frontier::rearrange_frontier;
use crate::pbv::{decode_window, BinGeometry, BinSet, PbvEncoding, ResolvedEncoding};
use crate::prefetch::{prefetch_slice_element, DEFAULT_PREFETCH_DISTANCE};
use crate::simd::{bin_indices, BinKernel};
use crate::stats::TraversalStats;
use crate::vis::{Vis, VisScheme};
use crate::VertexId;

/// Work-distribution scheme (the Figure 5 series).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduling {
    /// No multi-socket optimization: single-phase expansion, threads update
    /// VIS/DP directly from neighbor lists (maximum ping-pong).
    NoMultiSocketOpt,
    /// Two-phase with bins statically pinned to their home socket
    /// ("Multi-Socket aware"): no cross-socket bin traffic, but
    /// load-imbalance when bins are skewed.
    SocketAwareStatic,
    /// Two-phase with the even prefix split of §III-B3(a): whole bins plus
    /// at most two partial bins per socket.
    #[default]
    LoadBalanced,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct BfsOptions {
    /// VIS representation (Figure 4 series).
    pub vis: VisScheme,
    /// Work distribution (Figure 5 series).
    pub scheduling: Scheduling,
    /// Override the `N_VIS` partition count (default: the §III-A LLC rule).
    pub n_vis_override: Option<usize>,
    /// TLB-aware frontier rearrangement (§III-B3(b)).
    pub rearrange: bool,
    /// Adjacency prefetch distance in frontier entries (0 disables).
    pub prefetch_distance: usize,
    /// Bin-index kernel.
    pub bin_kernel: BinKernel,
    /// PBV stream encoding.
    pub encoding: PbvEncoding,
    /// Per-level direction selection (top-down vs bottom-up). The default
    /// is forced top-down — the paper's engine unchanged; bottom-up levels
    /// additionally require the symmetric doubled-edge graph convention.
    pub direction: DirectionPolicy,
    /// Sample hardware performance counters (cycles, instructions,
    /// LLC/dTLB load misses via `bfs-perf`) at the phase seams and
    /// accumulate them into the metrics registry. Off by default: each
    /// seam costs one `read(2)` per thread per step. When requested but
    /// unavailable (non-Linux, `perf_event_paranoid`, containers) the
    /// engine runs identically and [`BfsEngine::hw_status`] carries the
    /// typed reason.
    pub hw_counters: bool,
    /// Back the `DP`/`VIS`/frontier-bitmap arenas with 2 MiB transparent
    /// hugepages (§IV TLB pressure: fewer dTLB misses per scattered edge on
    /// the large per-vertex arrays). Off by default. When requested but
    /// unavailable (non-Linux, THP disabled) the engine runs identically on
    /// the heap and [`BfsEngine::hugepage_status`] carries the typed
    /// reason.
    pub huge_pages: bool,
}

impl Default for BfsOptions {
    fn default() -> Self {
        Self {
            vis: VisScheme::Bit,
            scheduling: Scheduling::LoadBalanced,
            n_vis_override: None,
            rearrange: true,
            prefetch_distance: DEFAULT_PREFETCH_DISTANCE,
            bin_kernel: BinKernel::Simd,
            encoding: PbvEncoding::Auto,
            direction: DirectionPolicy::ForcedTopDown,
            hw_counters: false,
            huge_pages: false,
        }
    }
}

/// Hardware-counter state, decided once at engine construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HwCounterStatus {
    /// [`BfsOptions::hw_counters`] was false; no probe was attempted.
    Disabled,
    /// The probe succeeded: each worker opens a per-thread counter group
    /// per SPMD region and samples it at the phase seams.
    Enabled,
    /// Requested but unavailable; the engine runs without hardware
    /// counters and the reason is carried for reporting.
    Unavailable(PerfUnavailable),
}

impl HwCounterStatus {
    /// The degradation reason, when there is one.
    pub fn unavailable_reason(&self) -> Option<&PerfUnavailable> {
        match self {
            HwCounterStatus::Unavailable(r) => Some(r),
            _ => None,
        }
    }
}

/// Hugepage-arena state, decided once at engine construction (the same
/// request → probe → typed degradation ladder as [`HwCounterStatus`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HugepageStatus {
    /// [`BfsOptions::huge_pages`] was false; no probe was attempted.
    Disabled,
    /// The probe succeeded: the `DP`/`VIS`/frontier-bitmap arenas are
    /// allocated 2 MiB-aligned with `madvise(MADV_HUGEPAGE)` (arrays below
    /// the size floor still fall back to the heap — see
    /// [`bfs_platform::hugepage::HUGE_MIN_BYTES`]).
    Enabled,
    /// Requested but unavailable; the engine runs on the heap and the
    /// reason is carried for reporting.
    Unavailable(HugepageUnavailable),
}

impl HugepageStatus {
    /// The degradation reason, when there is one.
    pub fn unavailable_reason(&self) -> Option<&HugepageUnavailable> {
        match self {
            HugepageStatus::Unavailable(r) => Some(r),
            _ => None,
        }
    }

    /// Whether arenas should actually be placed in hugepages.
    pub(crate) fn active(&self) -> bool {
        *self == HugepageStatus::Enabled
    }
}

/// Per-thread hardware sampling state for one SPMD region: a counter
/// group plus per-phase accumulators, all fixed-size (the warm path
/// stays allocation-free). Phase indices follow
/// [`bfs_metrics::Counter::HW_BY_PHASE`]: 0 = Phase I, 1 = Phase II,
/// 2 = bottom-up, 3 = rearrangement.
struct HwSampler {
    group: PerfGroup,
    last: PerfCounts,
    acc: [PerfCounts; 4],
}

impl HwSampler {
    /// Opens and enables this thread's group. `None` on any failure —
    /// per-thread degradation even after a successful engine-level probe
    /// (e.g. fd limits), never an error.
    fn open() -> Option<Self> {
        let mut group = PerfGroup::open(&ENGINE_EVENTS).ok()?;
        group.enable();
        let last = group.read_counts()?;
        Some(Self {
            group,
            last,
            acc: [PerfCounts::default(); 4],
        })
    }

    /// Re-reads the counters, dropping the interval since the previous
    /// read (used across barriers: wait time belongs to no phase).
    fn resync(&mut self) {
        if let Some(now) = self.group.read_counts() {
            self.last = now;
        }
    }

    /// Attributes the counters since the previous read to `phase`.
    fn sample(&mut self, phase: usize) {
        if let Some(now) = self.group.read_counts() {
            self.acc[phase].accumulate(&now.delta(&self.last));
            self.last = now;
        }
    }
}

/// Traversal output: depth and parent per vertex plus statistics.
#[derive(Clone, Debug, Default)]
pub struct BfsOutput {
    /// Depth per vertex (`INF_DEPTH` when unreached).
    pub depths: Vec<u32>,
    /// Parent per vertex (`VertexId::MAX` when unreached; source parents
    /// itself).
    pub parents: Vec<VertexId>,
    /// Run statistics.
    pub stats: TraversalStats,
}

/// Per-thread mutable traversal state (each field family lives in its own
/// [`ThreadOwned`] so the write/read epochs of the two phases never overlap
/// on one cell).
struct Counters {
    enqueued: u64,
    binning_ops: u64,
    edge_checks: u64,
    /// Neighbors scattered (binned or directly expanded) on top-down levels.
    scattered: u64,
    /// `(parent, v)` entries decoded from PBV bins in Phase II.
    bin_entries: u64,
    phase1: Duration,
    phase2: Duration,
    /// The bottom-up share of `phase2` (the metrics registry reports the
    /// two kernels separately; `TraversalStats` keeps the combined view).
    bottom_up: Duration,
    rearrange: Duration,
    /// Nanoseconds spent waiting at the three per-step barriers.
    barrier_ns: u64,
}

/// Per-thread, per-step measurements, overwritten each step. The owning
/// thread writes its cell during the step; the leader reads every cell
/// between the step's last two barriers to assemble a
/// [`StepEvent`] — the same epoch protocol as the frontier buffers.
#[derive(Clone, Copy, Default)]
struct StepScratch {
    phase1_ns: u64,
    phase2_ns: u64,
    rearrange_ns: u64,
    enqueued: u64,
    edge_checks: u64,
    scattered: u64,
}

/// Per-run traversal state: the `DP`/`VIS` arrays, every per-thread
/// `ThreadOwned` buffer family, and the bookkeeping that lets all of it be
/// reused across queries.
///
/// A fresh [`BfsEngine::run`] builds one of these, uses it once, and drops
/// it. A [`crate::session::BfsSession`] keeps one alive: between runs
/// [`prepare`](Self::prepare) resets `DP` in O(1) (epoch bump), `VIS` in
/// O(touched vertices), and the frontier/bin buffers in O(threads) — no
/// O(|V|) zeroing and no allocation on the warm path.
pub(crate) struct RunState {
    pub(crate) dp: DepthParent,
    pub(crate) vis: Vis,
    pub(crate) bv_cur: ThreadOwned<Vec<VertexId>>,
    pub(crate) bv_next: ThreadOwned<Vec<VertexId>>,
    pub(crate) bins: ThreadOwned<BinSet>,
    pub(crate) scratch: ThreadOwned<(Vec<VertexId>, Vec<u32>)>,
    step_scratch: ThreadOwned<StepScratch>,
    /// Dense current-frontier bits for bottom-up levels (zero-sized for
    /// forced-top-down engines). All-zero at every step boundary: each
    /// thread ORs its frontier list in before the level and clears exactly
    /// those bits after the level's last read barrier, so session reuse
    /// needs no extra reset.
    frontier_bitmap: FrontierBitmap,
    /// Leader-only per-depth enqueue log (`frontier_sizes`).
    frontier_log: ThreadOwned<Vec<u64>>,
    /// Leader-only per-depth direction log (aligned with
    /// `frontier_sizes[1..]`).
    direction_log: ThreadOwned<Vec<Direction>>,
    /// Leader-only per-level digest (direction, frontier size, critical-
    /// path phase ns), aligned with `direction_log`. Fixed capacity,
    /// preallocated at construction: warm-path recording never allocates
    /// (the flight-recorder seam — see DESIGN.md §15).
    level_log: ThreadOwned<bfs_trace::LevelDigestLog>,
    /// Per-thread log of every vertex the run enqueued (sessions only):
    /// exactly the set whose VIS storage the next `prepare` must clear.
    touched: ThreadOwned<Vec<VertexId>>,
    /// Whether the run loop records enqueued vertices into `touched`.
    track_touched: bool,
    runs: u64,
    last_source: Option<VertexId>,
}

impl RunState {
    /// Fresh state sized for `engine`. `track_touched` enables the touched
    /// log a session needs for its O(touched) VIS reset; one-shot runs skip
    /// the bookkeeping.
    pub(crate) fn new(engine: &BfsEngine<'_>, track_touched: bool) -> Self {
        Self::with_epoch_bits(engine, track_touched, None)
    }

    /// [`RunState::new`] with an explicit `DP` stamp width (tests use tiny
    /// widths to exercise epoch wraparound).
    pub(crate) fn with_epoch_bits(
        engine: &BfsEngine<'_>,
        track_touched: bool,
        epoch_bits: Option<u32>,
    ) -> Self {
        let n = engine.graph.num_vertices();
        let nthreads = engine.topology.total_threads();
        let huge = engine.hugepages.active();
        Self {
            dp: match epoch_bits {
                Some(bits) => DepthParent::with_epoch_bits_backed(n, bits, huge),
                None => DepthParent::new_backed(n, huge),
            },
            vis: Vis::new_backed(engine.options.vis, n, huge),
            bv_cur: ThreadOwned::from_fn(nthreads, |_| Vec::new()),
            bv_next: ThreadOwned::from_fn(nthreads, |_| Vec::new()),
            bins: ThreadOwned::from_fn(nthreads, |_| {
                BinSet::new(engine.geometry.n_bins, engine.encoding)
            }),
            scratch: ThreadOwned::from_fn(nthreads, |_| (Vec::new(), Vec::new())),
            step_scratch: ThreadOwned::from_fn(nthreads, |_| StepScratch::default()),
            frontier_bitmap: FrontierBitmap::new_backed(
                if engine.options.direction.may_go_bottom_up() {
                    n
                } else {
                    0
                },
                huge,
            ),
            frontier_log: ThreadOwned::from_fn(1, |_| Vec::new()),
            direction_log: ThreadOwned::from_fn(1, |_| Vec::new()),
            level_log: ThreadOwned::from_fn(1, |_| {
                bfs_trace::LevelDigestLog::with_capacity(bfs_trace::LEVEL_DIGEST_CAP)
            }),
            touched: ThreadOwned::from_fn(nthreads, |_| Vec::new()),
            track_touched,
            runs: 0,
            last_source: None,
        }
    }

    /// Number of runs this state has served.
    pub(crate) fn runs(&self) -> u64 {
        self.runs
    }

    /// Read access to the last run's per-level digest (the flight-
    /// recorder seam). Entries align with `TraversalStats::step_directions`
    /// up to the log's fixed capacity.
    pub(crate) fn with_level_digest<R>(
        &self,
        f: impl FnOnce(&bfs_trace::LevelDigestLog) -> R,
    ) -> R {
        self.level_log.read(0, f)
    }

    /// Sum of frontier/bin/scratch/touched buffer capacities in `u32`
    /// words — the high-water storage the session retains across runs.
    pub(crate) fn buffer_capacity_words(&self) -> usize {
        let mut words = 0;
        for t in 0..self.bv_cur.len() {
            words += self.bv_cur.read(t, Vec::capacity);
            words += self.bv_next.read(t, Vec::capacity);
            words += self.bins.read(t, BinSet::capacity_words);
            words += self.scratch.read(t, |(a, b)| a.capacity() + b.capacity());
            words += self.touched.read(t, Vec::capacity);
        }
        words
    }

    /// Releases all retained frontier/bin/scratch capacity (the documented
    /// shrink policy: buffers keep their high-water mark until the owner
    /// explicitly shrinks; the next run regrows them).
    pub(crate) fn shrink(&mut self) {
        for f in self.bv_cur.iter_mut() {
            *f = Vec::new();
        }
        for f in self.bv_next.iter_mut() {
            *f = Vec::new();
        }
        for b in self.bins.iter_mut() {
            b.shrink();
        }
        for (a, b) in self.scratch.iter_mut() {
            *a = Vec::new();
            *b = Vec::new();
        }
        for t in self.touched.iter_mut() {
            *t = Vec::new();
        }
    }

    /// Resets whatever the previous run dirtied and seeds `source`: `DP` by
    /// epoch bump (O(1), with the documented periodic full re-zero on stamp
    /// wraparound), `VIS` by clearing exactly the storage the previous run's
    /// enqueued vertices cover (O(touched)), buffers by `clear` (capacity
    /// kept).
    pub(crate) fn prepare(&mut self, source: VertexId) {
        if self.runs > 0 {
            self.dp.advance_epoch();
            // Split borrow: VIS is cleared from the touched lists in place.
            let Self { vis, touched, .. } = self;
            for list in touched.iter_mut() {
                vis.clear_touched(list);
                list.clear();
            }
            // The source is marked by `prepare` itself, never enqueued, so
            // the touched lists do not cover it.
            if let Some(s) = self.last_source.take() {
                self.vis.clear_touched(&[s]);
            }
            for f in self.bv_cur.iter_mut() {
                f.clear();
            }
            for f in self.bv_next.iter_mut() {
                f.clear();
            }
            for log in self.frontier_log.iter_mut() {
                log.clear();
            }
            for log in self.direction_log.iter_mut() {
                log.clear();
            }
            for log in self.level_log.iter_mut() {
                log.clear();
            }
        }
        self.runs += 1;
        self.last_source = Some(source);
        self.dp.set(source, 0, source);
        self.vis.mark(source);
        self.bv_cur.with_mut(0, |f| f.push(source));
        // `frontier_sizes[0]` is the source frontier (see `TraversalStats`).
        self.frontier_log.with_mut(0, |log| log.push(1));
    }
}

/// The BFS engine: graph + topology + options.
pub struct BfsEngine<'g> {
    graph: &'g CsrGraph,
    topology: Topology,
    pool: SocketPool,
    options: BfsOptions,
    geometry: BinGeometry,
    encoding: ResolvedEncoding,
    /// Always-on sharded metrics: one padded slot per pool thread plus a
    /// driver slot; workers flush their private counters at region exit.
    metrics: MetricsRegistry,
    /// Hardware-counter availability, probed once at construction when
    /// [`BfsOptions::hw_counters`] is set.
    hw: HwCounterStatus,
    /// Hugepage-arena availability, probed once at construction when
    /// [`BfsOptions::huge_pages`] is set.
    hugepages: HugepageStatus,
}

impl<'g> BfsEngine<'g> {
    /// Builds an engine. The bin geometry follows §III-A/§III-C(1) from the
    /// topology's LLC size unless overridden.
    pub fn new(graph: &'g CsrGraph, topology: Topology, options: BfsOptions) -> Self {
        topology.validate();
        assert!(
            graph.num_vertices() <= bfs_graph::MAX_VERTICES,
            "graph too large for the marker encoding"
        );
        let n = graph.num_vertices();
        let geometry = match options.n_vis_override {
            Some(nv) => BinGeometry::with_n_vis(n, topology.sockets, nv),
            None => BinGeometry::from_llc(n, topology.sockets, topology.llc_bytes),
        };
        let rho_estimate = graph.average_degree().max(1.0);
        let encoding = options.encoding.resolve(geometry.n_bins, rho_estimate);
        let hw = if options.hw_counters {
            match bfs_perf::availability() {
                Ok(()) => HwCounterStatus::Enabled,
                Err(reason) => HwCounterStatus::Unavailable(reason),
            }
        } else {
            HwCounterStatus::Disabled
        };
        let hugepages = if options.huge_pages {
            match bfs_platform::hugepage::availability() {
                Ok(()) => HugepageStatus::Enabled,
                Err(reason) => HugepageStatus::Unavailable(reason),
            }
        } else {
            HugepageStatus::Disabled
        };
        Self {
            graph,
            topology,
            pool: SocketPool::new(topology),
            options,
            geometry,
            encoding,
            metrics: MetricsRegistry::new(topology.total_threads()),
            hw,
            hugepages,
        }
    }

    /// The graph this engine traverses.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The engine's bin geometry (N_VIS, N_PBV, bin↔socket map).
    pub fn geometry(&self) -> &BinGeometry {
        &self.geometry
    }

    /// The resolved PBV encoding.
    pub fn encoding(&self) -> ResolvedEncoding {
        self.encoding
    }

    /// The options in effect.
    pub fn options(&self) -> &BfsOptions {
        &self.options
    }

    /// Hardware-counter availability for this engine:
    /// [`HwCounterStatus::Disabled`] unless requested via
    /// [`BfsOptions::hw_counters`], then the probed outcome.
    pub fn hw_status(&self) -> &HwCounterStatus {
        &self.hw
    }

    /// Hugepage-arena availability for this engine:
    /// [`HugepageStatus::Disabled`] unless requested via
    /// [`BfsOptions::huge_pages`], then the probed outcome.
    pub fn hugepage_status(&self) -> &HugepageStatus {
        &self.hugepages
    }

    /// Whether the traversal arenas this engine builds actually land in
    /// hugepage-backed memory (sufficiently large ones, when the probe
    /// succeeded).
    pub fn hugepages_active(&self) -> bool {
        self.hugepages.active()
    }

    /// Merged view of the always-on metrics registry. `&mut self` proves no
    /// traversal is in flight, so the merge needs no synchronization.
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Zeroes every metrics slot (counters and histograms).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset()
    }

    /// Mutable access to the always-on registry, for drivers that record
    /// their own driver-scope series next to the engine's (e.g. the serve
    /// admission layer's request-lifecycle spans). `&mut self` proves no
    /// traversal is in flight, so the single-writer discipline holds.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Runs a traversal from `source`.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn run(&self, source: VertexId) -> BfsOutput {
        self.run_traced(source, &NoopSink)
    }

    /// Runs a traversal from `source`, emitting one [`RunEvent`] and one
    /// [`StepEvent`] per BFS level into `sink`.
    ///
    /// Event assembly (per-thread timing vectors, bin occupancies, the `DP`
    /// scan behind per-step duplicate counts) only happens when
    /// `sink.enabled()`; with a [`NoopSink`] this is exactly [`run`](Self::run).
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn run_traced(&self, source: VertexId, sink: &dyn TraceSink) -> BfsOutput {
        let mut state = RunState::new(self, false);
        let mut out = BfsOutput::default();
        self.run_with_state(&mut state, source, sink, "engine", &mut out);
        out
    }

    /// The traversal core: resets and seeds `state` for `source`, runs the
    /// SPMD region of Figure 3 on the persistent pool, and writes results
    /// into `out`, reusing its allocations.
    ///
    /// [`run_traced`](Self::run_traced) calls this with a throwaway
    /// [`RunState`]; a [`crate::session::BfsSession`] calls it with a
    /// long-lived one, which is what makes warm queries allocation-free for
    /// frontier, bin, `DP`, and `VIS` storage.
    pub(crate) fn run_with_state(
        &self,
        state: &mut RunState,
        source: VertexId,
        sink: &dyn TraceSink,
        engine_name: &str,
        out: &mut BfsOutput,
    ) {
        let n = self.graph.num_vertices();
        assert!((source as usize) < n, "source out of range");
        let t0 = Instant::now();
        let nthreads = self.topology.total_threads();
        let tracing = sink.enabled();
        if tracing {
            sink.record(&TraceEvent::Run(RunEvent {
                engine: engine_name.to_string(),
                vertices: n as u64,
                edges: self.graph.num_edges(),
                source,
                sockets: self.topology.sockets,
                lanes_per_socket: self.topology.lanes_per_socket,
                threads: nthreads,
                n_vis: Some(self.geometry.n_vis),
                n_pbv: Some(self.geometry.n_bins),
                encoding: Some(format!("{:?}", self.encoding)),
                scheduling: Some(format!("{:?}", self.options.scheduling)),
                vis: Some(format!("{:?}", self.options.vis)),
                nodes: None,
            }));
        }

        state.prepare(source);
        // The SPMD region only needs shared access; per-thread mutation goes
        // through the `ThreadOwned` cells.
        let state = &*state;
        let track_touched = state.track_touched;

        // Frontier-size and frontier-out-degree accumulators, double-
        // buffered by step parity (reset happens a full barrier before the
        // next use of a slot). Slot 0 is pre-seeded with the source frontier
        // so the step-1 direction decision sees `n_f = 1`,
        // `m_f = deg(source)`.
        let adaptive = matches!(self.options.direction, DirectionPolicy::Auto { .. });
        let source_degree = self.graph.degree(source) as u64;
        let totals = [AtomicU64::new(1), AtomicU64::new(0)];
        let edge_totals = [AtomicU64::new(source_degree), AtomicU64::new(0)];
        // Out-degrees of everything claimed so far (duplicates included):
        // the explored side of the α rule's unexplored-edge estimate.
        let explored = AtomicU64::new(source_degree);

        let counters = self.pool.run(|ctx| {
            let tid = ctx.thread_id;
            // Held for the whole region: per-step histogram observations go
            // straight to the thread's padded slot; counter totals flush
            // once at region exit. No allocation on this path.
            let mut mw = self.metrics.writer(tid);
            // Per-thread hardware counter group, sampled at the phase
            // seams. None unless the construction-time probe succeeded;
            // a thread-level open failure degrades that thread silently.
            let mut hw = if self.hw == HwCounterStatus::Enabled {
                HwSampler::open()
            } else {
                None
            };
            let mut c = Counters {
                enqueued: 0,
                binning_ops: 0,
                edge_checks: 0,
                scattered: 0,
                bin_entries: 0,
                phase1: Duration::ZERO,
                phase2: Duration::ZERO,
                bottom_up: Duration::ZERO,
                rearrange: Duration::ZERO,
                barrier_ns: 0,
            };
            // Direction of the level being executed. Every thread evaluates
            // the same pure decision on accumulators that are stable between
            // the previous step's last barrier and this step's first write,
            // so all threads agree without extra communication.
            let mut dir = Direction::TopDown;
            let mut step: u32 = 1;
            loop {
                assert!(
                    step <= n as u32 + 1,
                    "BFS failed to terminate after {step} steps"
                );
                let prev_slot = ((step & 1) ^ 1) as usize;
                dir = self.options.direction.decide(
                    dir,
                    DecisionInputs {
                        frontier_vertices: totals[prev_slot].load(Ordering::Relaxed),
                        frontier_edges: edge_totals[prev_slot].load(Ordering::Relaxed),
                        unexplored_edges: self
                            .graph
                            .num_edges()
                            .saturating_sub(explored.load(Ordering::Relaxed)),
                        total_vertices: n as u64,
                    },
                );
                if tid == 0 {
                    totals[(step & 1) as usize].store(0, Ordering::Relaxed);
                    edge_totals[(step & 1) as usize].store(0, Ordering::Relaxed);
                }
                let scattered_before = c.scattered;
                // Drop whatever accumulated since the last seam (loop
                // bookkeeping, previous step's tail) from attribution.
                if let Some(h) = hw.as_mut() {
                    h.resync();
                }
                let p1 = Instant::now();
                match dir {
                    // Bottom-up "Phase I": publish this thread's sparse
                    // frontier list into the dense bitmap (sparse → dense
                    // conversion; relaxed ORs, read only after the barrier).
                    Direction::BottomUp => {
                        state
                            .bv_cur
                            .read(tid, |f| state.frontier_bitmap.set_list(f));
                    }
                    Direction::TopDown => match self.options.scheduling {
                        Scheduling::NoMultiSocketOpt => {
                            self.expand_direct(
                                ctx.thread_id,
                                nthreads,
                                &state.bv_cur,
                                &state.bv_next,
                                &state.dp,
                                &state.vis,
                                step,
                                &mut c,
                            );
                        }
                        _ => {
                            self.phase_one(
                                tid,
                                nthreads,
                                &state.bv_cur,
                                &state.bins,
                                &state.scratch,
                                &mut c,
                            );
                        }
                    },
                }
                let d1 = p1.elapsed();
                c.phase1 += d1;
                // Phase I hardware sample, mirroring `Phase1Ns` semantics
                // (on bottom-up levels this covers the bitmap publish);
                // taken before the barrier so wait time stays out.
                if let Some(h) = hw.as_mut() {
                    h.sample(0);
                }
                c.barrier_ns += ctx.timed_barrier().1;
                if let Some(h) = hw.as_mut() {
                    h.resync();
                }

                let mut d2 = Duration::ZERO;
                let checks_before = c.edge_checks;
                match dir {
                    Direction::BottomUp => {
                        let p2 = Instant::now();
                        self.bottom_up_step(tid, nthreads, state, step, &mut c);
                        d2 = p2.elapsed();
                        c.phase2 += d2;
                        c.bottom_up += d2;
                        if let Some(h) = hw.as_mut() {
                            h.sample(2);
                        }
                    }
                    Direction::TopDown
                        if self.options.scheduling != Scheduling::NoMultiSocketOpt =>
                    {
                        let p2 = Instant::now();
                        self.phase_two(
                            tid,
                            nthreads,
                            &state.bins,
                            &state.bv_next,
                            &state.dp,
                            &state.vis,
                            step,
                            &mut c,
                        );
                        d2 = p2.elapsed();
                        c.phase2 += d2;
                        if let Some(h) = hw.as_mut() {
                            h.sample(1);
                        }
                    }
                    Direction::TopDown => {}
                }

                let mut dr = Duration::ZERO;
                // Bottom-up output is built by an ascending vertex scan, so
                // it is already page-window sorted; rearranging would be a
                // no-op pass.
                if self.options.rearrange && dir == Direction::TopDown {
                    let pr = Instant::now();
                    state.scratch.with_mut(tid, |(tmp, _)| {
                        state.bv_next.with_mut(tid, |f| {
                            rearrange_frontier(
                                f,
                                self.graph,
                                self.topology.page_bytes,
                                self.topology.tlb_entries,
                                tmp,
                            );
                        });
                    });
                    dr = pr.elapsed();
                    c.rearrange += dr;
                    if let Some(h) = hw.as_mut() {
                        h.sample(3);
                    }
                }
                let mine = state.bv_next.with_mut(tid, |f| {
                    if track_touched {
                        // Log the vertices this run marks so the next
                        // `prepare` can clear VIS in O(touched).
                        state.touched.with_mut(tid, |t| t.extend_from_slice(f));
                    }
                    f.len() as u64
                });
                // Out-degree sum of this thread's enqueues: the next level's
                // `m_f` and the explored-edge running total. Only the
                // adaptive policy reads these, so forced policies skip the
                // degree walk.
                let mine_edges: u64 = if adaptive {
                    state.bv_next.read(tid, |f| {
                        f.iter().map(|&v| self.graph.degree(v) as u64).sum()
                    })
                } else {
                    0
                };
                c.enqueued += mine;
                mw.observe(MetricHist::StepNs, (d1 + d2 + dr).as_nanos() as u64);
                // Unconditional (six stores per thread per step): the
                // leader's level digest reads these even when full
                // tracing is off.
                state.step_scratch.with_mut(tid, |s| {
                    *s = StepScratch {
                        phase1_ns: d1.as_nanos() as u64,
                        phase2_ns: d2.as_nanos() as u64,
                        rearrange_ns: dr.as_nanos() as u64,
                        enqueued: mine,
                        edge_checks: c.edge_checks - checks_before,
                        scattered: c.scattered - scattered_before,
                    };
                });
                totals[(step & 1) as usize].fetch_add(mine, Ordering::Relaxed);
                if adaptive {
                    edge_totals[(step & 1) as usize].fetch_add(mine_edges, Ordering::Relaxed);
                    explored.fetch_add(mine_edges, Ordering::Relaxed);
                }
                c.barrier_ns += ctx.timed_barrier().1;
                let total = totals[(step & 1) as usize].load(Ordering::Relaxed);
                if tid == 0 && total > 0 {
                    state.frontier_log.with_mut(0, |log| log.push(total));
                    state.direction_log.with_mut(0, |log| log.push(dir));
                    // Bounded-overhead level digest: critical-path (max
                    // over threads) phase times from the step scratch,
                    // recorded into a preallocated fixed-capacity log —
                    // no allocation, no DP scan (unlike `emit_step_event`).
                    let (mut p1, mut p2, mut pr) = (0u64, 0u64, 0u64);
                    for t in 0..nthreads {
                        state.step_scratch.read(t, |s| {
                            p1 = p1.max(s.phase1_ns);
                            p2 = p2.max(s.phase2_ns);
                            pr = pr.max(s.rearrange_ns);
                        });
                    }
                    state.level_log.with_mut(0, |log| {
                        log.record(bfs_trace::LevelDigest {
                            step,
                            top_down: dir == Direction::TopDown,
                            frontier: total,
                            phase1_ns: p1,
                            phase2_ns: p2,
                            rearrange_ns: pr,
                        });
                    });
                    if tracing {
                        self.emit_step_event(
                            sink,
                            step,
                            total,
                            nthreads,
                            dir,
                            &state.step_scratch,
                            &state.bins,
                            &state.dp,
                        );
                    }
                }
                // Un-publish this thread's frontier bits — every bitmap
                // reader is past the barrier above, and the next level's
                // build starts after the barrier below, so the bitmap is
                // all-zero at every step boundary (and at run end, which is
                // what makes session reuse free). Then swap own frontier
                // buffers and clear the consumed one.
                if dir == Direction::BottomUp {
                    state
                        .bv_cur
                        .read(tid, |f| state.frontier_bitmap.clear_list(f));
                }
                state.bv_cur.with_mut(tid, |cur| {
                    state.bv_next.with_mut(tid, |next| {
                        std::mem::swap(cur, next);
                        next.clear();
                    });
                });
                c.barrier_ns += ctx.timed_barrier().1;
                if total == 0 {
                    break;
                }
                step += 1;
            }
            // Flush the region's thread-scope totals into this thread's
            // metrics slot: ten plain adds, once per query.
            mw.add(Metric::Phase1Ns, c.phase1.as_nanos() as u64);
            mw.add(Metric::Phase2Ns, (c.phase2 - c.bottom_up).as_nanos() as u64);
            mw.add(Metric::BottomUpNs, c.bottom_up.as_nanos() as u64);
            mw.add(Metric::RearrangeNs, c.rearrange.as_nanos() as u64);
            mw.add(Metric::BarrierNs, c.barrier_ns);
            mw.add(Metric::ScatteredEdges, c.scattered);
            mw.add(Metric::BinEntries, c.bin_entries);
            mw.add(Metric::EdgeChecks, c.edge_checks);
            mw.add(Metric::Enqueued, c.enqueued);
            mw.add(Metric::BinningOps, c.binning_ops);
            // Hardware counters: 16 more adds when sampling ran, through
            // the same unsynchronized per-slot path.
            if let Some(h) = &hw {
                for (phase, metrics) in Metric::HW_BY_PHASE.iter().enumerate() {
                    for (event, &m) in metrics.iter().enumerate() {
                        mw.add(m, h.acc[phase].get(event));
                    }
                }
            }
            c
        });

        let total_time = t0.elapsed();
        state.dp.fill_arrays(&mut out.depths, &mut out.parents);
        let mut visited = 0u64;
        let mut traversed = 0u64;
        #[allow(clippy::needless_range_loop)] // v is a vertex id used against two arrays
        for v in 0..n {
            if out.depths[v] != INF_DEPTH {
                visited += 1;
                traversed += self.graph.degree(v as u32) as u64;
            }
        }
        // Reuse `out`'s log allocations instead of taking the state's.
        let mut frontier_sizes = std::mem::take(&mut out.stats.frontier_sizes);
        frontier_sizes.clear();
        state
            .frontier_log
            .read(0, |log| frontier_sizes.extend_from_slice(log));
        let mut step_directions = std::mem::take(&mut out.stats.step_directions);
        step_directions.clear();
        state
            .direction_log
            .read(0, |log| step_directions.extend_from_slice(log));
        let enqueued: u64 = counters.iter().map(|c| c.enqueued).sum();
        out.stats = TraversalStats {
            steps: frontier_sizes.len() as u32 - 1,
            visited_vertices: visited,
            traversed_edges: traversed,
            duplicate_enqueues: (enqueued + 1).saturating_sub(visited),
            frontier_sizes,
            step_directions,
            bottom_up_edge_checks: counters.iter().map(|c| c.edge_checks).sum(),
            phase1_time: counters.iter().map(|c| c.phase1).max().unwrap_or_default(),
            phase2_time: counters.iter().map(|c| c.phase2).max().unwrap_or_default(),
            rearrange_time: counters
                .iter()
                .map(|c| c.rearrange)
                .max()
                .unwrap_or_default(),
            total_time,
            binning_ops: counters.iter().map(|c| c.binning_ops).sum(),
        };

        // Driver-scope metrics: recorded once per query from the finished
        // stats, so the hot loop carries no driver-side work at all.
        let stats = &out.stats;
        let mut dm = self.metrics.driver();
        let td_steps = stats
            .step_directions
            .iter()
            .filter(|d| **d == Direction::TopDown)
            .count() as u64;
        dm.add(Metric::Queries, 1);
        dm.add(Metric::QueryNs, total_time.as_nanos() as u64);
        dm.add(Metric::Steps, stats.steps as u64);
        dm.add(Metric::TopDownSteps, td_steps);
        dm.add(
            Metric::BottomUpSteps,
            stats.step_directions.len() as u64 - td_steps,
        );
        dm.add(
            Metric::DirectionSwitches,
            count_switches(&stats.step_directions),
        );
        dm.add(Metric::VisitedVertices, stats.visited_vertices);
        dm.add(Metric::TraversedEdges, stats.traversed_edges);
        dm.add(Metric::DuplicateEnqueues, stats.duplicate_enqueues);
        dm.observe(MetricHist::QueryNs, total_time.as_nanos() as u64);
        for &f in &stats.frontier_sizes {
            dm.observe(MetricHist::FrontierSize, f);
        }
    }

    /// Assembles and records the step's [`StepEvent`] on the leader, between
    /// the step's last two barriers: every thread's `step_scratch` and bins
    /// are in their read epoch, and nobody writes `DP` until the next step.
    #[allow(clippy::too_many_arguments)]
    fn emit_step_event(
        &self,
        sink: &dyn TraceSink,
        step: u32,
        total: u64,
        nthreads: usize,
        dir: Direction,
        step_scratch: &ThreadOwned<StepScratch>,
        bins: &ThreadOwned<BinSet>,
        dp: &DepthParent,
    ) {
        let threads: Vec<ThreadStep> = (0..nthreads)
            .map(|t| {
                step_scratch.read(t, |s| ThreadStep {
                    thread: t,
                    phase1_ns: s.phase1_ns,
                    phase2_ns: s.phase2_ns,
                    rearrange_ns: s.rearrange_ns,
                    enqueued: s.enqueued,
                    edge_checks: s.edge_checks,
                })
            })
            .collect();
        // Bins are bypassed entirely on bottom-up levels, so their
        // occupancies (from whichever top-down level last filled them) would
        // be stale noise.
        let bin_occupancy: Vec<u64> = if self.options.scheduling == Scheduling::NoMultiSocketOpt
            || dir == Direction::BottomUp
        {
            Vec::new()
        } else {
            (0..self.geometry.n_bins)
                .map(|b| {
                    (0..nthreads)
                        .map(|t| bins.read(t, |bs| bs.bin_len(b)) as u64)
                        .sum()
                })
                .collect()
        };
        // Distinct vertices claimed this step: an O(|V|) relaxed scan, paid
        // only when tracing. Enqueues beyond that are the benign-race
        // duplicates of this step.
        let claimed = (0..self.graph.num_vertices() as u32)
            .filter(|&v| dp.depth(v) == step)
            .count() as u64;
        // Bottom-up levels scatter nothing; `None` keeps the attribution
        // report from treating them as zero-traffic top-down steps.
        let scattered = (dir == Direction::TopDown).then(|| {
            (0..nthreads)
                .map(|t| step_scratch.read(t, |s| s.scattered))
                .sum()
        });
        sink.record(&TraceEvent::Step(StepEvent {
            step,
            frontier: total,
            duplicates: total.saturating_sub(claimed),
            direction: Some(dir.as_str().to_string()),
            threads,
            bin_occupancy,
            scattered,
        }));
    }

    /// Phase I: bin the neighbors of this thread's share of the frontier.
    fn phase_one(
        &self,
        tid: usize,
        nthreads: usize,
        bv_cur: &ThreadOwned<Vec<VertexId>>,
        bins: &ThreadOwned<BinSet>,
        scratch: &ThreadOwned<(Vec<VertexId>, Vec<u32>)>,
        c: &mut Counters,
    ) {
        // Deterministic division: every thread derives the same plan from
        // the (now read-only) frontier lengths.
        let streams: Vec<Stream> = (0..nthreads)
            .map(|t| Stream {
                bin: t,
                owner: t,
                len: bv_cur.read(t, |f| f.len()),
            })
            .collect();
        let my_segments: Vec<Segment> = match self.options.scheduling {
            Scheduling::SocketAwareStatic => {
                let lanes = self.topology.lanes_per_socket;
                divide_static(&streams, |b| b / lanes, self.topology.sockets, lanes, 1)
                    .swap_remove(tid)
            }
            _ => divide_even(&streams, nthreads, 1).swap_remove(tid),
        };
        let pref = self.options.prefetch_distance;
        let offsets = self.graph.offsets();
        let raw = self.graph.raw_neighbors();
        // The bin-index buffer lives in the thread's scratch cell so its
        // allocation is reused across steps instead of regrown each step.
        scratch.with_mut(tid, |(_, idx_buf)| {
            bins.with_mut(tid, |my_bins| {
                my_bins.clear();
                for seg in &my_segments {
                    bv_cur.read(seg.owner, |frontier| {
                        let window = &frontier[seg.range.clone()];
                        for (k, &u) in window.iter().enumerate() {
                            if pref > 0 {
                                if let Some(&next_u) = window.get(k + pref) {
                                    // Prefetch the adjacency pointer and the
                                    // first neighbor line (§III-C(3)).
                                    prefetch_slice_element(offsets, next_u as usize);
                                    let off = offsets[next_u as usize] as usize;
                                    prefetch_slice_element(raw, off);
                                }
                            }
                            let neighbors = self.graph.neighbors(u);
                            c.scattered += neighbors.len() as u64;
                            my_bins.begin_vertex(u);
                            c.binning_ops += bin_indices(
                                self.options.bin_kernel,
                                neighbors,
                                self.geometry.bin_shift,
                                idx_buf,
                            );
                            for (&v, &b) in neighbors.iter().zip(idx_buf.iter()) {
                                my_bins.push_neighbor(b as usize, v);
                            }
                        }
                    });
                }
            });
        });
    }

    /// Phase II: walk assigned bin windows, filter through VIS, claim DP,
    /// build the next frontier.
    #[allow(clippy::too_many_arguments)]
    fn phase_two(
        &self,
        tid: usize,
        nthreads: usize,
        bins: &ThreadOwned<BinSet>,
        bv_next: &ThreadOwned<Vec<VertexId>>,
        dp: &DepthParent,
        vis: &Vis,
        step: u32,
        c: &mut Counters,
    ) {
        let align = self.encoding.alignment();
        // Bin-major stream order: a part's share is contiguous in bin order,
        // which is both the locality story (§III-B3(a)) and the VIS
        // partition residency story (§III-A).
        let mut streams = Vec::with_capacity(self.geometry.n_bins * nthreads);
        for b in 0..self.geometry.n_bins {
            for t in 0..nthreads {
                streams.push(Stream {
                    bin: b,
                    owner: t,
                    len: bins.read(t, |bs| bs.bin_len(b)),
                });
            }
        }
        let my_segments: Vec<Segment> = match self.options.scheduling {
            Scheduling::SocketAwareStatic => divide_static(
                &streams,
                |b| self.geometry.socket_of_bin(b),
                self.topology.sockets,
                self.topology.lanes_per_socket,
                align,
            )
            .swap_remove(tid),
            _ => divide_even(&streams, nthreads, align).swap_remove(tid),
        };
        bv_next.with_mut(tid, |next| {
            for seg in &my_segments {
                bins.read(seg.owner, |bs| {
                    decode_window(
                        bs.bin(seg.bin),
                        seg.range.start,
                        seg.range.end,
                        self.encoding,
                        |parent, v| {
                            c.bin_entries += 1;
                            if vis.definitely_visited_or_mark(v) {
                                return;
                            }
                            let claimed = match self.options.vis {
                                // The atomic fetch_or already guarantees
                                // exactly-once, so the DP write is a plain
                                // store (Figure 2(a)).
                                VisScheme::AtomicBit | VisScheme::AtomicBitTest => {
                                    dp.set(v, step, parent);
                                    true
                                }
                                _ => dp.claim_relaxed(v, step, parent),
                            };
                            if claimed {
                                next.push(v);
                            }
                        },
                    );
                });
            }
        });
    }

    /// Bottom-up step kernel: scan this thread's share of the vertex space
    /// in bin order, probing each unclaimed vertex's neighbor list against
    /// the frontier bitmap and claiming on the first hit (early exit — a
    /// vertex with `k` frontier parents costs 1 check instead of `k` claim
    /// attempts).
    ///
    /// Work division reuses the prefix-split machinery of `balance.rs` over
    /// one stream per bin (vertex ranges instead of PBV windows):
    /// `LoadBalanced`/`NoMultiSocketOpt` take the even split,
    /// `SocketAwareStatic` pins each bin's range to its home socket. Either
    /// way a part's share is contiguous in bin order, so the scanned
    /// `VIS`/`DP`/bitmap stripes stay cache-resident (§III-A) — and ranges
    /// are disjoint, so every vertex has exactly one claiming thread and the
    /// `DP` write is a single plain store with no race at all (stronger than
    /// the benign top-down claim race).
    ///
    /// Correctness requires the repo's symmetric doubled-edge convention:
    /// `neighbors(v)` must contain every frontier vertex that has an edge to
    /// `v` (out-neighbors = in-neighbors).
    fn bottom_up_step(
        &self,
        tid: usize,
        nthreads: usize,
        state: &RunState,
        step: u32,
        c: &mut Counters,
    ) {
        let geo = &self.geometry;
        let streams: Vec<Stream> = (0..geo.n_bins)
            .map(|b| Stream {
                bin: b,
                owner: 0,
                len: geo.bin_vertex_range(b).len(),
            })
            .collect();
        let my_segments: Vec<Segment> = match self.options.scheduling {
            Scheduling::SocketAwareStatic => divide_static(
                &streams,
                |b| geo.socket_of_bin(b),
                self.topology.sockets,
                self.topology.lanes_per_socket,
                1,
            )
            .swap_remove(tid),
            _ => divide_even(&streams, nthreads, 1).swap_remove(tid),
        };
        let pref = self.options.prefetch_distance;
        let offsets = self.graph.offsets();
        let raw = self.graph.raw_neighbors();
        let bitmap = &state.frontier_bitmap;
        let dp = &state.dp;
        let vis = &state.vis;
        state.bv_next.with_mut(tid, |next| {
            for seg in &my_segments {
                let base = geo.bin_vertex_range(seg.bin).start as usize;
                let lo = base + seg.range.start;
                let hi = base + seg.range.end;
                for u in lo..hi {
                    if pref > 0 && u + pref < hi {
                        // Prefetch the adjacency pointer and first neighbor
                        // line of the vertex `pref` slots ahead (§III-C(3)).
                        prefetch_slice_element(offsets, u + pref);
                        let off = offsets[u + pref] as usize;
                        prefetch_slice_element(raw, off);
                    }
                    let v = u as VertexId;
                    if vis.is_marked(v) || dp.is_assigned(v) {
                        continue;
                    }
                    for &parent in self.graph.neighbors(v) {
                        c.edge_checks += 1;
                        if bitmap.contains(parent) {
                            dp.set(v, step, parent);
                            vis.mark(v);
                            next.push(v);
                            break;
                        }
                    }
                }
            }
        });
    }

    /// Single-phase expansion for [`Scheduling::NoMultiSocketOpt`]: no
    /// binning, direct spatially-incoherent VIS/DP updates.
    #[allow(clippy::too_many_arguments)]
    fn expand_direct(
        &self,
        tid: usize,
        nthreads: usize,
        bv_cur: &ThreadOwned<Vec<VertexId>>,
        bv_next: &ThreadOwned<Vec<VertexId>>,
        dp: &DepthParent,
        vis: &Vis,
        step: u32,
        c: &mut Counters,
    ) {
        let streams: Vec<Stream> = (0..nthreads)
            .map(|t| Stream {
                bin: t,
                owner: t,
                len: bv_cur.read(t, |f| f.len()),
            })
            .collect();
        let my_segments = divide_even(&streams, nthreads, 1).swap_remove(tid);
        let pref = self.options.prefetch_distance;
        let offsets = self.graph.offsets();
        bv_next.with_mut(tid, |next| {
            for seg in &my_segments {
                bv_cur.read(seg.owner, |frontier| {
                    let window = &frontier[seg.range.clone()];
                    for (k, &u) in window.iter().enumerate() {
                        if pref > 0 {
                            if let Some(&next_u) = window.get(k + pref) {
                                prefetch_slice_element(offsets, next_u as usize);
                            }
                        }
                        let neighbors = self.graph.neighbors(u);
                        c.scattered += neighbors.len() as u64;
                        for &v in neighbors {
                            if vis.definitely_visited_or_mark(v) {
                                continue;
                            }
                            let claimed = match self.options.vis {
                                VisScheme::AtomicBit | VisScheme::AtomicBitTest => {
                                    dp.set(v, step, u);
                                    true
                                }
                                _ => dp.claim_relaxed(v, step, u),
                            };
                            if claimed {
                                next.push(v);
                            }
                        }
                    }
                });
            }
        });
    }
}

/// A single-cell `ThreadOwned` used as a leader-only log (keeps the cell
/// protocol uniform instead of adding a mutex for one vector — only thread 0
/// ever touches it during the run).
pub(crate) fn parking_lot_free_log(capacity_hint: usize) -> ThreadOwned<Vec<u64>> {
    ThreadOwned::from_fn(1, |_| Vec::with_capacity(capacity_hint.min(1024)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_bfs;
    use crate::validate::validate_bfs_tree;
    use bfs_graph::gen::classic::{binary_tree, lollipop, path, star, two_cliques};
    use bfs_graph::gen::rmat::{rmat, RmatConfig};
    use bfs_graph::gen::stress::stress_bipartite;
    use bfs_graph::gen::uniform::uniform_random;
    use bfs_graph::rng::rng_from_seed;

    fn check_against_serial(g: &CsrGraph, source: VertexId, topo: Topology, opts: BfsOptions) {
        let engine = BfsEngine::new(g, topo, opts);
        let out = engine.run(source);
        let reference = serial_bfs(g, source);
        assert_eq!(
            out.depths, reference.depths,
            "depths diverge (opts {opts:?})"
        );
        validate_bfs_tree(g, source, &out.depths, &out.parents).unwrap();
        assert_eq!(out.stats.visited_vertices, reference.visited);
        assert_eq!(out.stats.traversed_edges, reference.traversed_edges);
        assert_eq!(out.stats.steps, reference.max_depth);
    }

    #[test]
    fn classic_graphs_all_schedulings() {
        for scheduling in [
            Scheduling::NoMultiSocketOpt,
            Scheduling::SocketAwareStatic,
            Scheduling::LoadBalanced,
        ] {
            for g in [path(17), star(9), binary_tree(31), lollipop(6, 10)] {
                check_against_serial(
                    &g,
                    0,
                    Topology::synthetic(2, 2),
                    BfsOptions {
                        scheduling,
                        ..Default::default()
                    },
                );
            }
        }
    }

    #[test]
    fn all_vis_schemes_match_serial_on_random_graphs() {
        let g = uniform_random(2000, 8, &mut rng_from_seed(42));
        for vis in VisScheme::ALL {
            check_against_serial(
                &g,
                0,
                Topology::synthetic(2, 2),
                BfsOptions {
                    vis,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn rmat_with_many_threads_and_partitions() {
        let g = rmat(&RmatConfig::paper(11, 8), &mut rng_from_seed(7));
        let src = bfs_graph::stats::nth_non_isolated(&g, 0).unwrap();
        check_against_serial(
            &g,
            src,
            Topology::synthetic(2, 4),
            BfsOptions {
                n_vis_override: Some(4),
                ..Default::default()
            },
        );
    }

    #[test]
    fn stress_graph_all_schedulings() {
        let g = stress_bipartite(512, 6, &mut rng_from_seed(3));
        for scheduling in [
            Scheduling::NoMultiSocketOpt,
            Scheduling::SocketAwareStatic,
            Scheduling::LoadBalanced,
        ] {
            check_against_serial(
                &g,
                0,
                Topology::synthetic(2, 2),
                BfsOptions {
                    scheduling,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn pairs_and_markers_encodings_agree() {
        let g = uniform_random(1000, 4, &mut rng_from_seed(9));
        for encoding in [PbvEncoding::Markers, PbvEncoding::Pairs, PbvEncoding::Auto] {
            check_against_serial(
                &g,
                0,
                Topology::synthetic(2, 2),
                BfsOptions {
                    encoding,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn no_rearrange_no_prefetch_scalar_kernel() {
        let g = uniform_random(800, 6, &mut rng_from_seed(5));
        check_against_serial(
            &g,
            0,
            Topology::synthetic(1, 3),
            BfsOptions {
                rearrange: false,
                prefetch_distance: 0,
                bin_kernel: BinKernel::Scalar,
                ..Default::default()
            },
        );
    }

    #[test]
    fn disconnected_graph_terminates() {
        let g = two_cliques(10, 10);
        check_against_serial(&g, 0, Topology::synthetic(2, 2), BfsOptions::default());
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::empty(1);
        let engine = BfsEngine::new(&g, Topology::synthetic(1, 2), BfsOptions::default());
        let out = engine.run(0);
        assert_eq!(out.depths, vec![0]);
        assert_eq!(out.stats.visited_vertices, 1);
        assert_eq!(out.stats.steps, 0);
        // The source frontier is logged even when nothing else is reached.
        assert_eq!(out.stats.frontier_sizes, vec![1]);
    }

    #[test]
    fn oversubscribed_threads_on_tiny_graph() {
        let g = path(3);
        check_against_serial(&g, 1, Topology::synthetic(4, 4), BfsOptions::default());
    }

    #[test]
    fn duplicate_rate_is_tiny() {
        let g = uniform_random(5000, 16, &mut rng_from_seed(11));
        let engine = BfsEngine::new(&g, Topology::synthetic(2, 2), BfsOptions::default());
        let out = engine.run(0);
        assert!(
            out.stats.duplicate_rate() < 0.01,
            "duplicate rate {} far above the paper's 0.2%",
            out.stats.duplicate_rate()
        );
    }

    #[test]
    fn frontier_sizes_sum_to_visited_minus_source() {
        let g = uniform_random(1000, 4, &mut rng_from_seed(13));
        let engine = BfsEngine::new(&g, Topology::synthetic(2, 2), BfsOptions::default());
        let out = engine.run(0);
        // `frontier_sizes[0]` is the source; later entries are per-depth
        // enqueues, duplicates included.
        assert_eq!(out.stats.frontier_sizes[0], 1);
        assert_eq!(out.stats.steps as usize, out.stats.frontier_sizes.len() - 1);
        let sum: u64 = out.stats.frontier_sizes[1..].iter().sum();
        assert_eq!(
            sum,
            out.stats.visited_vertices - 1 + out.stats.duplicate_enqueues
        );
    }

    #[test]
    fn traced_run_emits_run_and_step_events() {
        use bfs_trace::{RingSink, TraceEvent};
        let g = uniform_random(1500, 6, &mut rng_from_seed(21));
        let engine = BfsEngine::new(&g, Topology::synthetic(2, 2), BfsOptions::default());
        let ring = RingSink::new(4096);
        let out = engine.run_traced(0, &ring);
        let events = ring.snapshot();
        let runs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Run(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].engine, "engine");
        assert_eq!(runs[0].vertices, 1500);
        assert_eq!(runs[0].threads, 4);
        assert_eq!(runs[0].n_pbv, Some(engine.geometry().n_bins));
        let steps: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Step(s) => Some(s),
                _ => None,
            })
            .collect();
        // One step event per depth level, aligned with frontier_sizes[1..].
        assert_eq!(steps.len(), out.stats.steps as usize);
        for (i, s) in steps.iter().enumerate() {
            assert_eq!(s.step as usize, i + 1);
            assert_eq!(s.frontier, out.stats.frontier_sizes[i + 1]);
            assert_eq!(s.threads.len(), 4);
            let enq: u64 = s.threads.iter().map(|t| t.enqueued).sum();
            assert_eq!(enq, s.frontier);
            assert_eq!(s.bin_occupancy.len(), engine.geometry().n_bins);
        }
        // Per-step duplicates sum to the run's total.
        let dups: u64 = steps.iter().map(|s| s.duplicates).sum();
        assert_eq!(dups, out.stats.duplicate_enqueues);
        // Tracing must not perturb results: depths match an untraced run.
        assert_eq!(out.depths, engine.run(0).depths);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn rejects_bad_source() {
        let g = path(3);
        BfsEngine::new(&g, Topology::synthetic(1, 1), BfsOptions::default()).run(9);
    }

    #[test]
    fn forced_bottom_up_matches_serial_all_schedulings() {
        for scheduling in [
            Scheduling::NoMultiSocketOpt,
            Scheduling::SocketAwareStatic,
            Scheduling::LoadBalanced,
        ] {
            for g in [
                path(17),
                star(9),
                binary_tree(31),
                lollipop(6, 10),
                two_cliques(10, 10),
            ] {
                check_against_serial(
                    &g,
                    0,
                    Topology::synthetic(2, 2),
                    BfsOptions {
                        scheduling,
                        direction: DirectionPolicy::ForcedBottomUp,
                        ..Default::default()
                    },
                );
            }
        }
    }

    #[test]
    fn forced_bottom_up_all_vis_schemes() {
        let g = uniform_random(1500, 8, &mut rng_from_seed(23));
        for vis in VisScheme::ALL {
            check_against_serial(
                &g,
                0,
                Topology::synthetic(2, 2),
                BfsOptions {
                    vis,
                    direction: DirectionPolicy::ForcedBottomUp,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn auto_direction_matches_serial_on_rmat() {
        let g = rmat(&RmatConfig::paper(11, 8), &mut rng_from_seed(7));
        let src = bfs_graph::stats::nth_non_isolated(&g, 0).unwrap();
        check_against_serial(
            &g,
            src,
            Topology::synthetic(2, 4),
            BfsOptions {
                direction: DirectionPolicy::auto(),
                ..Default::default()
            },
        );
    }

    #[test]
    fn direction_log_matches_policy_and_steps() {
        let g = uniform_random(2500, 12, &mut rng_from_seed(41));
        let topo = Topology::synthetic(2, 2);
        let td = BfsEngine::new(
            &g,
            topo,
            BfsOptions {
                direction: DirectionPolicy::ForcedTopDown,
                ..Default::default()
            },
        )
        .run(0);
        assert_eq!(td.stats.step_directions.len(), td.stats.steps as usize);
        assert!(td
            .stats
            .step_directions
            .iter()
            .all(|&d| d == Direction::TopDown));
        assert_eq!(td.stats.bottom_up_steps(), 0);
        assert_eq!(td.stats.bottom_up_edge_checks, 0);

        let bu = BfsEngine::new(
            &g,
            topo,
            BfsOptions {
                direction: DirectionPolicy::ForcedBottomUp,
                ..Default::default()
            },
        )
        .run(0);
        assert_eq!(bu.stats.step_directions.len(), bu.stats.steps as usize);
        assert!(bu
            .stats
            .step_directions
            .iter()
            .all(|&d| d == Direction::BottomUp));
        assert!(bu.stats.bottom_up_edge_checks > 0);
        assert_eq!(bu.depths, td.depths);

        // A dense low-diameter graph flips the middle levels bottom-up and
        // the tail back top-down under the default α/β.
        let auto = BfsEngine::new(
            &g,
            topo,
            BfsOptions {
                direction: DirectionPolicy::auto(),
                ..Default::default()
            },
        )
        .run(0);
        assert_eq!(auto.depths, td.depths);
        assert!(
            auto.stats.bottom_up_steps() > 0,
            "auto never went bottom-up"
        );
        assert_eq!(
            auto.stats.step_directions[0],
            Direction::TopDown,
            "a 12-degree source must not trigger the α rule at step 1"
        );
    }

    #[test]
    fn traced_bottom_up_steps_carry_direction_and_edge_checks() {
        use bfs_trace::{RingSink, TraceEvent};
        let g = uniform_random(1500, 6, &mut rng_from_seed(21));
        let engine = BfsEngine::new(
            &g,
            Topology::synthetic(2, 2),
            BfsOptions {
                direction: DirectionPolicy::ForcedBottomUp,
                ..Default::default()
            },
        );
        let ring = RingSink::new(4096);
        let out = engine.run_traced(0, &ring);
        let steps: Vec<_> = ring
            .snapshot()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Step(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(steps.len(), out.stats.steps as usize);
        let mut checks = 0u64;
        for s in &steps {
            assert_eq!(s.direction.as_deref(), Some("bottom-up"));
            assert!(
                s.bin_occupancy.is_empty(),
                "bottom-up levels bypass the bins"
            );
            checks += s.threads.iter().map(|t| t.edge_checks).sum::<u64>();
        }
        assert_eq!(checks, out.stats.bottom_up_edge_checks);
    }

    #[test]
    fn frontier_bitmap_is_zero_between_runs_and_sized_by_policy() {
        let g = uniform_random(1000, 6, &mut rng_from_seed(3));
        let topo = Topology::synthetic(2, 2);
        let engine = BfsEngine::new(
            &g,
            topo,
            BfsOptions {
                direction: DirectionPolicy::auto(),
                ..Default::default()
            },
        );
        let mut state = RunState::new(&engine, true);
        let mut out = BfsOutput::default();
        for src in [0u32, 500, 999] {
            engine.run_with_state(&mut state, src, &NoopSink, "engine", &mut out);
            assert!(
                state.frontier_bitmap.is_clear(),
                "bitmap must be all-zero at run end (source {src})"
            );
        }
        // Forced-top-down engines pay nothing for the bitmap.
        let td = BfsEngine::new(&g, topo, BfsOptions::default());
        assert_eq!(RunState::new(&td, false).frontier_bitmap.footprint(), 0);
    }

    #[test]
    fn aggressive_thresholds_switch_mid_traversal() {
        // α huge → flip bottom-up as soon as the frontier has any edges;
        // β tiny → flip straight back (the BU→TD rule fires when
        // n_f·β < n), so the scheduler oscillates every level.
        let g = uniform_random(800, 6, &mut rng_from_seed(9));
        let out = BfsEngine::new(
            &g,
            Topology::synthetic(2, 2),
            BfsOptions {
                direction: DirectionPolicy::Auto {
                    alpha: 1e12,
                    beta: 1e-12,
                },
                ..Default::default()
            },
        )
        .run(0);
        let reference = serial_bfs(&g, 0);
        assert_eq!(out.depths, reference.depths);
        let dirs = &out.stats.step_directions;
        assert!(dirs.contains(&Direction::BottomUp));
        assert!(
            dirs.windows(2).any(|w| w[0] != w[1]),
            "expected a mid-traversal switch, got {dirs:?}"
        );
    }

    #[test]
    fn geometry_is_exposed() {
        let g = uniform_random(1 << 12, 4, &mut rng_from_seed(1));
        let engine = BfsEngine::new(
            &g,
            Topology::synthetic(2, 2),
            BfsOptions {
                n_vis_override: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(engine.geometry().n_vis, 2);
        assert_eq!(engine.geometry().n_bins, 4);
    }

    #[test]
    fn metrics_registry_records_phases_and_cross_checks() {
        use bfs_metrics::{Counter, Hist};
        let g = uniform_random(1 << 12, 8, &mut rng_from_seed(9));
        let mut engine = BfsEngine::new(&g, Topology::synthetic(2, 2), BfsOptions::default());
        let out = engine.run(0);
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.total(Counter::Queries), 1);
        assert_eq!(snap.total(Counter::Steps), out.stats.steps as u64);
        assert_eq!(
            snap.total(Counter::VisitedVertices),
            out.stats.visited_vertices
        );
        assert_eq!(
            snap.total(Counter::TraversedEdges),
            out.stats.traversed_edges
        );
        // Forced top-down: no bottom-up work, and every scattered neighbor
        // is decoded from a bin in Phase II — the two-phase invariant.
        assert_eq!(snap.total(Counter::BottomUpSteps), 0);
        assert_eq!(snap.total(Counter::BottomUpNs), 0);
        assert_eq!(
            snap.total(Counter::ScatteredEdges),
            snap.total(Counter::BinEntries)
        );
        assert!(snap.total(Counter::ScatteredEdges) > 0);
        assert!(snap.total(Counter::Phase1Ns) > 0);
        assert!(snap.total(Counter::Phase2Ns) > 0);
        assert!(snap.total(Counter::QueryNs) > 0);
        // Per-step histogram: every thread observes once per loop iteration
        // (the productive steps plus the final empty-frontier round).
        assert_eq!(
            snap.histogram(Hist::StepNs).count,
            (out.stats.steps as u64 + 1) * 4
        );
        assert_eq!(snap.histogram(Hist::QueryNs).count, 1);
        // A second query accumulates; reset zeroes.
        engine.run(1);
        let snap2 = engine.metrics_snapshot();
        assert_eq!(snap2.total(Counter::Queries), 2);
        engine.reset_metrics();
        assert_eq!(engine.metrics_snapshot().total(Counter::Queries), 0);
    }

    #[test]
    fn traced_steps_carry_scatter_counts() {
        use bfs_trace::RingSink;
        let g = uniform_random(1 << 10, 6, &mut rng_from_seed(3));
        let engine = BfsEngine::new(&g, Topology::synthetic(1, 2), BfsOptions::default());
        let ring = RingSink::new(4096);
        engine.run_traced(0, &ring);
        let steps: Vec<_> = ring
            .snapshot()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Step(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(!steps.is_empty());
        // Forced top-down: every step reports its scattered-neighbor count.
        for s in &steps {
            assert!(s.scattered.is_some(), "step {} lacks scattered", s.step);
        }
        assert!(steps.iter().any(|s| s.scattered.unwrap() > 0));
    }
}
